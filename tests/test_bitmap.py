"""Unit tests for the packed Bitmap."""

import numpy as np
import pytest

from repro.core import Bitmap
from repro.errors import StorageError


class TestConstruction:
    def test_empty(self):
        bm = Bitmap(0)
        assert len(bm) == 0
        assert bm.count() == 0

    def test_zero_filled(self):
        bm = Bitmap(100)
        assert len(bm) == 100
        assert bm.count() == 0

    def test_one_filled(self):
        bm = Bitmap(100, fill=True)
        assert bm.count() == 100

    def test_fill_masks_tail_bits(self):
        bm = Bitmap(3, fill=True)
        assert bm.count() == 3
        assert bm.to_indices().tolist() == [0, 1, 2]

    def test_negative_size_rejected(self):
        with pytest.raises(StorageError):
            Bitmap(-1)

    def test_from_bool_array_roundtrip(self):
        mask = np.array([True, False, True, True, False] * 30)
        bm = Bitmap.from_bool_array(mask)
        assert np.array_equal(bm.to_bool_array(), mask)

    def test_from_indices(self):
        bm = Bitmap.from_indices(np.array([0, 5, 64, 127]), 128)
        assert bm.to_indices().tolist() == [0, 5, 64, 127]

    def test_copy_is_independent(self):
        bm = Bitmap(10)
        other = bm.copy()
        other.set(3)
        assert not bm.get(3)
        assert other.get(3)


class TestBitAccess:
    def test_set_and_get(self):
        bm = Bitmap(70)
        bm.set(0)
        bm.set(63)
        bm.set(64)
        assert bm.get(0) and bm.get(63) and bm.get(64)
        assert not bm.get(1)

    def test_clear(self):
        bm = Bitmap(10, fill=True)
        bm.set(4, False)
        assert not bm.get(4)
        assert bm.count() == 9

    def test_getitem(self):
        bm = Bitmap(8)
        bm.set(2)
        assert bm[2] and not bm[3]

    def test_out_of_range(self):
        bm = Bitmap(8)
        with pytest.raises(StorageError):
            bm.get(8)
        with pytest.raises(StorageError):
            bm.set(-1)

    def test_set_many_and_test(self):
        bm = Bitmap(200)
        bm.set_many(np.array([1, 65, 130, 199]))
        probe = bm.test(np.array([0, 1, 65, 66, 130, 199]))
        assert probe.tolist() == [False, True, True, False, True, True]

    def test_set_many_same_word_collision(self):
        # multiple updates landing in one uint64 word must all apply
        bm = Bitmap(64)
        bm.set_many(np.array([0, 1, 2, 3, 62, 63]))
        assert bm.count() == 6

    def test_set_many_clear(self):
        bm = Bitmap(64, fill=True)
        bm.set_many(np.array([0, 1]), value=False)
        assert bm.count() == 62

    def test_set_many_out_of_range(self):
        bm = Bitmap(8)
        with pytest.raises(StorageError):
            bm.set_many(np.array([8]))


class TestLogical:
    def test_and(self):
        a = Bitmap.from_indices([0, 1, 2], 100)
        b = Bitmap.from_indices([1, 2, 3], 100)
        assert (a & b).to_indices().tolist() == [1, 2]

    def test_or(self):
        a = Bitmap.from_indices([0], 100)
        b = Bitmap.from_indices([99], 100)
        assert (a | b).to_indices().tolist() == [0, 99]

    def test_invert_respects_length(self):
        a = Bitmap.from_indices([0, 1], 67)
        inv = ~a
        assert inv.count() == 65
        assert not inv.get(0) and inv.get(66)

    def test_size_mismatch(self):
        with pytest.raises(StorageError):
            Bitmap(4) & Bitmap(5)

    def test_equality(self):
        a = Bitmap.from_indices([3, 4], 10)
        b = Bitmap.from_indices([3, 4], 10)
        assert a == b
        b.set(5)
        assert a != b


class TestSize:
    def test_nbytes_is_packed(self):
        # 1 million bits should be ~125 KB, not 1 MB
        bm = Bitmap(1_000_000)
        assert bm.nbytes <= 1_000_000 // 8 + 8

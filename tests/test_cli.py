"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import load_database, save_database

from .conftest import build_tiny_star


@pytest.fixture
def tiny_archive(tmp_path):
    path = tmp_path / "tiny.npz"
    save_database(build_tiny_star(), path)
    return str(path)


class TestGenerate:
    def test_generate_ssb(self, tmp_path, capsys):
        out = str(tmp_path / "ssb.npz")
        code = main(["generate", "--benchmark", "ssb", "--sf", "0.001",
                     "--out", out])
        assert code == 0
        assert "lineorder=6,000" in capsys.readouterr().out
        db = load_database(out)
        assert db.table("lineorder").num_rows == 6000

    def test_generate_tpch(self, tmp_path, capsys):
        out = str(tmp_path / "tpch.npz")
        assert main(["generate", "--benchmark", "tpch", "--sf", "0.001",
                     "--out", out]) == 0
        assert "lineitem" in capsys.readouterr().out


class TestQuery:
    def test_query_prints_rows(self, tiny_archive, capsys):
        code = main(["query", tiny_archive,
                     "SELECT d_year, sum(lo_revenue) AS s "
                     "FROM lineorder, date GROUP BY d_year ORDER BY d_year"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1997" in out and "170" in out

    def test_query_limit_notice(self, tiny_archive, capsys):
        main(["query", tiny_archive,
              "SELECT lo_orderkey FROM lineorder ORDER BY lo_orderkey",
              "--limit", "3"])
        assert "more rows" in capsys.readouterr().out

    def test_query_explain(self, tiny_archive, capsys):
        code = main(["query", tiny_archive,
                     "SELECT count(*) FROM lineorder, customer "
                     "WHERE c_region = 'ASIA'", "--explain"])
        assert code == 0
        assert "root: lineorder" in capsys.readouterr().out

    def test_query_variant(self, tiny_archive, capsys):
        code = main(["query", tiny_archive,
                     "SELECT count(*) AS n FROM lineorder",
                     "--variant", "AIRScan_R"])
        assert code == 0
        assert "AIRScan_R" in capsys.readouterr().out

    def test_query_csv_output(self, tiny_archive, tmp_path, capsys):
        out_csv = str(tmp_path / "result.csv")
        main(["query", tiny_archive,
              "SELECT d_year, count(*) AS n FROM lineorder, date "
              "GROUP BY d_year", "--csv", out_csv])
        text = open(out_csv).read()
        assert text.startswith("d_year|n")

    def test_parse_error_is_reported(self, tiny_archive, capsys):
        code = main(["query", tiny_archive, "SELEKT nonsense"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_repeat_reports_warm_cache_breakdown(self, tiny_archive, capsys):
        code = main(["query", tiny_archive,
                     "SELECT d_year, count(*) AS n FROM lineorder, date "
                     "GROUP BY d_year", "--repeat", "3", "--breakdown"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stage breakdown" in out
        assert "cache: plan hits=1" in out

    def test_no_cache_flag(self, tiny_archive, capsys):
        code = main(["query", tiny_archive,
                     "SELECT count(*) AS n FROM lineorder",
                     "--repeat", "2", "--breakdown", "--no-cache"])
        assert code == 0
        assert "cache:" not in capsys.readouterr().out


class TestValidate:
    def test_consistent(self, tiny_archive, capsys):
        assert main(["validate", tiny_archive]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_violation_detected(self, tmp_path, capsys):
        db = build_tiny_star()
        db.table("customer").delete([0])  # still referenced
        path = tmp_path / "broken.npz"
        save_database(db, path)
        assert main(["validate", str(path)]) == 1
        assert "VIOLATION" in capsys.readouterr().out


class TestSSBCommand:
    def test_runs_all_queries(self, tmp_path, capsys):
        out = str(tmp_path / "ssb.npz")
        main(["generate", "--benchmark", "ssb", "--sf", "0.002",
              "--out", out])
        capsys.readouterr()
        assert main(["ssb", out, "--repeat", "1", "--no-cache"]) == 0
        text = capsys.readouterr().out
        assert "Q1.1" in text and "Q4.3" in text and "AVG" in text


@pytest.fixture(scope="module")
def ssb_archive(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ssb.npz"
    main(["generate", "--benchmark", "ssb", "--sf", "0.002",
          "--out", str(path)])
    return str(path)


class TestBenchCommand:
    def test_qps_mode_writes_txt_and_json(self, ssb_archive, tmp_path,
                                          capsys):
        import json

        txt = str(tmp_path / "qps.txt")
        js = str(tmp_path / "BENCH_qps.json")
        code = main(["bench", ssb_archive, "--mode", "qps",
                     "--queries", "Q1.1,Q2.1", "--rounds", "2",
                     "--out", txt, "--json", js])
        assert code == 0
        out = capsys.readouterr().out
        assert "host:" in out and "core" in out
        assert "serve" in out and "x vs cold" in out
        assert "host:" in open(txt).read()
        doc = json.load(open(js))
        assert doc["benchmark"] == "qps_sweep"
        assert doc["host"]["cores"] >= 1
        assert {cell["mode"] for cell in doc["cells"]} == {
            "cold", "compile", "serve"}

    def test_scaling_mode_headers_core_count(self, ssb_archive, tmp_path,
                                             capsys):
        import json

        js = str(tmp_path / "BENCH_scaling.json")
        code = main(["bench", ssb_archive, "--backends", "serial",
                     "--workers", "1", "--queries", "Q1.1",
                     "--repeat", "1", "--json", js])
        assert code == 0
        assert "host:" in capsys.readouterr().out
        doc = json.load(open(js))
        assert doc["benchmark"] == "backend_scaling"
        assert doc["cells"][0]["per_query_best_ms"]["Q1.1"] > 0


class TestCacheCommand:
    def test_prints_tier_statistics(self, ssb_archive, capsys):
        code = main(["cache", ssb_archive, "--queries", "Q1.1,Q2.1",
                     "--rounds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "query cache tiers" in out
        for tier in ("plan", "leaf", "axis", "result"):
            assert tier in out
        assert "cold" in out and "warm" in out

"""Second-generation skipping and clustering-preserving compaction.

Pins this PR's contracts:

* code-set block summaries (dictionary codes / AIR references) build
  correctly — including folded domains and dirty blocks — and give the
  Q2/Q3/Q4 families real skips the min/max maps never could;
* the cost gate fires exactly when pruning cannot recoup its own
  bookkeeping (``ExecutionStats.prune_gated``), and never changes
  results;
* ``Table.consolidate(order)`` validates the permutation it is handed;
* the declared clustering spec survives an npz save/load round trip;
* ``Database.compact`` re-sorts a churned table back into its declared
  clustering, rebuilds the summaries, restores the skip counts of the
  fresh layout, and bumps the mutation stamp so no cache tier or fleet
  worker can serve a pre-compaction answer;
* the 13-query pruning differential holds on deletion-heavy / churned
  blocks across the serial, thread, and process backends, before and
  after compaction;
* the serving layer's ``{"compact": ...}`` admin verb compacts in
  place, republishes stamps, and keeps answering correctly.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.statistics import (
    CODE_SET_FOLD_CAP,
    ColumnCodeSetMap,
    StampedStore,
    build_column_code_set_map,
    rebuild_zone_maps,
    zone_maps_for,
)
from repro.core.column import DictColumn, FixedColumn
from repro.core.compaction import clustering_sort_order
from repro.core.types import DataType
from repro.datagen import generate_ssb
from repro.engine import AStoreEngine
from repro.engine.cache import query_cache_for
from repro.engine.serve import AsyncEngine, serve_tcp
from repro.engine.sharding import _code_set_verdicts
from repro.errors import StorageError
from repro.io import load_database, save_database
from repro.workloads import SSB_QUERIES

BACKENDS = ("serial", "thread", "process")


def fresh_engine(db, **overrides):
    overrides.setdefault("parallel_backend", "serial")
    overrides.setdefault("use_cache", False)
    return AStoreEngine.variant(db, "AIRScan_C_P_G", **overrides)


def churn(db, seed=7):
    """Deletion-heavy churn: drop a random sixth of the fact table,
    append a tenth back in arrival order (destroying the clustered
    layout), and rewrite a stripe in place."""
    table = db.table("lineorder")
    rng = np.random.default_rng(seed)
    victims = rng.choice(np.arange(1, table.num_rows), size=table.num_rows // 6,
                         replace=False)
    table.delete(victims)
    # re-append a tenth of the table in scattered (arrival) order: the
    # tail blocks mix every year band, destroying the clustered layout
    template = table.row(0)
    rows = {k: [] for k in template}
    stride = max(table.num_rows // (table.num_rows // 10 + 1), 1)
    for position in range(0, table.num_rows - 1, stride):
        for k, v in table.row(position).items():
            rows[k].append(v)
    table.insert(rows)
    table.update([0], {"lo_quantity": [int(template["lo_quantity"])]})
    return table


def skip_fraction(stats):
    total = (stats.morsels_skipped + stats.morsels_accepted
             + stats.morsels_scanned)
    return stats.morsels_skipped / total if total else 0.0


# -- code-set summaries -------------------------------------------------------


class TestCodeSetMap:
    def test_dict_column_blocks(self):
        column = DictColumn("v", values=["a", "b", "a", "c", "c", "c"])
        csm = build_column_code_set_map(column, block_rows=2)
        assert csm.nblocks == 3 and csm.exact
        assert csm.domain == column.cardinality
        # block 0 holds codes {a,b}, block 1 {a,c}, block 2 {c}
        a, b, c = column.dictionary.lookup_many(["a", "b", "c"])
        member = np.zeros(csm.domain, dtype=bool)
        member[b] = True
        empty, full = _code_set_verdicts(csm, member)
        assert empty.tolist() == [False, True, True]
        member[:] = False
        member[c] = True
        empty, full = _code_set_verdicts(csm, member)
        assert empty.tolist() == [True, False, False]
        assert full.tolist() == [False, False, True]

    def test_fixed_column_has_no_code_domain(self):
        column = FixedColumn("v", DataType.INT64,
                             data=np.arange(8, dtype=np.int64))
        assert build_column_code_set_map(column, block_rows=4) is None

    def test_folded_domain_skip_stays_sound(self):
        # fold the 4-value domain down to 2 slots: codes 0/2 and 1/3
        # collide, so ACCEPT must be withheld but SKIP stays sound
        csm_exact = build_column_code_set_map(
            DictColumn("v", values=["a", "b", "a", "b"]), block_rows=2)
        folded = ColumnCodeSetMap(
            block_rows=2, domain=CODE_SET_FOLD_CAP * 2,
            bits=np.packbits(np.zeros((1, CODE_SET_FOLD_CAP), dtype=bool),
                             axis=1),
            dirty=np.zeros(1, dtype=bool), exact=False)
        assert folded.fold == CODE_SET_FOLD_CAP
        member = np.zeros(folded.domain, dtype=bool)
        member[CODE_SET_FOLD_CAP + 5] = True  # folds onto slot 5
        empty, full = _code_set_verdicts(folded, member)
        assert empty.tolist() == [True]       # no bits set: skippable
        assert full.tolist() == [False]       # never ACCEPT when folded
        assert csm_exact.exact and not folded.exact

    def test_dirty_blocks_never_judged(self):
        from repro.core.column import AIRColumn

        refs = np.array([0, 1, -1, 0], dtype=np.int64)  # block 1 stale
        column = AIRColumn("ref", "dim", data=refs)
        csm = build_column_code_set_map(column, block_rows=2, domain=2)
        assert csm.dirty.tolist() == [False, True]
        member = np.zeros(2, dtype=bool)  # nothing passes
        empty, full = _code_set_verdicts(csm, member)
        assert empty.tolist() == [True, False]  # dirty block: scan

    def test_zone_store_serves_code_sets(self, ssb_air):
        zones = zone_maps_for(ssb_air, store=StampedStore(), block_rows=1024)
        csm = zones.code_set("lineorder", "lo_orderdate")
        assert csm is not None and csm.nblocks > 0
        assert zones.code_set("lineorder", "lo_orderdate") is csm  # memoized
        assert zones.code_set("lineorder", "lo_revenue") is None


class TestCodeSetPruning:
    @pytest.mark.parametrize("qid", ("Q2.1", "Q3.2", "Q4.3"))
    def test_dim_probe_families_now_skip(self, ssb_air, qid):
        # PR4's min/max maps could not prune these: their predicates hit
        # dictionary codes and AIR references, not value ranges
        with fresh_engine(ssb_air) as engine:
            stats = engine.query(SSB_QUERIES[qid]).stats
        assert stats.morsels_skipped > 0, qid

    def test_gate_fires_on_unprofitable_prune(self, ssb_air):
        # Q3.1 (region-level: most blocks survive) cannot recoup the
        # verdict pass at this scale — the gate must fire and the plain
        # scan must still answer identically
        with fresh_engine(ssb_air) as pruned, \
                fresh_engine(ssb_air, use_pruning=False) as plain:
            result = pruned.query(SSB_QUERIES["Q3.1"])
            assert result.stats.prune_gated > 0
            assert result.stats.morsels_skipped == 0
            assert result.rows() == plain.query(SSB_QUERIES["Q3.1"]).rows()

    def test_gate_stays_open_on_profitable_prune(self, ssb_air):
        with fresh_engine(ssb_air) as engine:
            stats = engine.query(SSB_QUERIES["Q1.1"]).stats
        assert stats.prune_gated == 0
        assert stats.morsels_skipped > 0


# -- consolidate(order) -------------------------------------------------------


class TestConsolidateOrder:
    def test_reorders_live_rows(self, tiny_star):
        table = tiny_star.table("lineorder")
        keys = table["lo_revenue"].values().copy()
        order = np.argsort(-keys)  # descending revenue
        table.consolidate(order)
        assert table["lo_revenue"].values().copy().tolist() \
            == sorted(keys.tolist(), reverse=True)

    def test_drops_deleted_rows_in_order(self, tiny_star):
        table = tiny_star.table("lineorder")
        table.delete([0, 3])
        live = np.array([7, 6, 5, 4, 2, 1], dtype=np.int64)
        table.consolidate(live)
        assert table.num_rows == 6
        assert table["lo_orderkey"].values().tolist() == [8, 7, 6, 5, 3, 2]

    def test_rejects_wrong_length(self, tiny_star):
        table = tiny_star.table("lineorder")
        with pytest.raises(StorageError):
            table.consolidate(np.array([0, 1], dtype=np.int64))

    def test_rejects_deleted_and_duplicate_positions(self, tiny_star):
        table = tiny_star.table("lineorder")
        table.delete([2])
        bad = np.array([0, 1, 2, 3, 4, 5, 6], dtype=np.int64)  # 2 deleted
        with pytest.raises(StorageError):
            table.consolidate(bad)
        dup = np.array([0, 1, 3, 4, 5, 6, 6], dtype=np.int64)
        with pytest.raises(StorageError):
            table.consolidate(dup)


# -- clustering spec ----------------------------------------------------------


class TestClusteringSpec:
    def test_generator_declares_lineorder_clustering(self):
        db = generate_ssb(sf=0.002, seed=41)
        spec = db.clustering["lineorder"]
        assert spec[0] == "date.d_year"          # outermost: year bands
        assert "lineorder.lo_orderdate" in spec  # innermost: date order

    def test_spec_survives_npz_round_trip(self, tmp_path):
        db = generate_ssb(sf=0.002, seed=41)
        path = tmp_path / "ssb.npz"
        save_database(db, path)
        clone = load_database(path)
        assert clone.clustering == db.clustering

    def test_sort_order_is_a_live_permutation(self):
        db = generate_ssb(sf=0.002, seed=42)
        table = db.table("lineorder")
        table.delete([3, 5, 8])
        order = clustering_sort_order(db, "lineorder",
                                      db.clustering["lineorder"])
        assert len(order) == table.num_live
        assert len(np.unique(order)) == len(order)


# -- compaction ---------------------------------------------------------------


class TestCompaction:
    def test_compact_restores_fresh_layout_skipping(self):
        fresh = generate_ssb(sf=0.002, seed=43)
        with fresh_engine(fresh) as engine:
            fresh_stats = engine.query(SSB_QUERIES["Q1.1"]).stats
        assert fresh_stats.morsels_skipped > 0

        db = generate_ssb(sf=0.002, seed=43)
        churn(db)
        with fresh_engine(db) as engine:
            churned_stats = engine.query(SSB_QUERIES["Q1.1"]).stats
        # appends landed outside the year bands: skipping degrades
        assert skip_fraction(churned_stats) < skip_fraction(fresh_stats)

        summary = db.compact("lineorder", store=query_cache_for(db))
        assert summary["clustered"] and summary["dropped"] > 0
        assert summary["rows"] == db.table("lineorder").num_rows
        assert summary["summaries"] > 0
        with fresh_engine(db) as engine:
            compacted_stats = engine.query(SSB_QUERIES["Q1.1"]).stats
        assert skip_fraction(compacted_stats) \
            >= skip_fraction(fresh_stats) - 0.1

    def test_compact_bumps_stamp_and_invalidates_caches(self):
        db = generate_ssb(sf=0.002, seed=44)
        store = query_cache_for(db)
        with fresh_engine(db, use_cache=True) as engine:
            before = engine.query(SSB_QUERIES["Q1.1"]).rows()
            stamp = db.table("lineorder").mutation_count
            db.compact("lineorder", store=store)
            assert db.table("lineorder").mutation_count > stamp
            # post-compaction answers are identical, never stale-served
            assert engine.query(SSB_QUERIES["Q1.1"]).rows() == before

    def test_compact_without_clustering_spec_still_consolidates(self):
        db = generate_ssb(sf=0.002, seed=45)
        db.clustering.pop("lineorder")
        table = db.table("lineorder")
        table.delete(np.arange(0, table.num_rows, 9))
        summary = db.compact("lineorder")
        assert summary["dropped"] > 0 and not summary["clustered"]
        assert table.num_rows == table.num_live

    def test_rebuild_zone_maps_counts_summaries(self):
        db = generate_ssb(sf=0.002, seed=46)
        built = rebuild_zone_maps(db, "lineorder", store=query_cache_for(db))
        assert built > 0


# -- the churned differential -------------------------------------------------


class TestChurnedDifferential:
    def test_13_queries_all_backends_pre_and_post_compact(self):
        db = generate_ssb(sf=0.002, seed=47)
        churn(db)
        by_phase = {}
        for phase in ("churned", "compacted"):
            if phase == "compacted":
                summary = db.compact("lineorder", store=query_cache_for(db))
                assert summary["clustered"]
            reference = None
            for backend in BACKENDS:
                workers = 2 if backend != "serial" else 1
                for pruning in (True, False):
                    with fresh_engine(db, parallel_backend=backend,
                                      workers=workers,
                                      use_pruning=pruning) as engine:
                        answers = {qid: engine.query(sql).rows()
                                   for qid, sql in SSB_QUERIES.items()}
                    if reference is None:
                        reference = answers
                    else:
                        assert answers == reference, (phase, backend, pruning)
            by_phase[phase] = reference
        # compaction reorders storage, never answers
        for qid in SSB_QUERIES:
            assert sorted(by_phase["churned"][qid]) \
                == sorted(by_phase["compacted"][qid]), qid


# -- serving-layer admin verb -------------------------------------------------


SQL_YEAR = ("SELECT d_year, sum(lo_revenue) AS r FROM lineorder, date "
            "WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year")


class TestCompactAdmin:
    def test_compact_admin_compacts_and_keeps_answers(self):
        db = generate_ssb(sf=0.002, seed=48)
        churn(db)

        async def main():
            engine = AsyncEngine(db)
            server = await serve_tcp(engine, "127.0.0.1", 0)
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)

            async def rpc(obj):
                writer.write(json.dumps(obj).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            before = (await rpc({"sql": SQL_YEAR, "id": 1}))["rows"]
            stamp = db.table("lineorder").mutation_count
            response = await rpc({"compact": "lineorder", "id": 2})
            assert response["ok"] and response["table"] == "lineorder"
            assert response["dropped"] > 0 and response["clustered"]
            assert response["mutation_count"] > stamp
            assert response["mutation_count"] \
                == db.table("lineorder").mutation_count
            assert db.table("lineorder").num_rows \
                == db.table("lineorder").num_live
            after = (await rpc({"sql": SQL_YEAR, "id": 3}))["rows"]
            assert after == before  # cached pre-compaction entry not served
            bad = await rpc({"compact": "nope", "id": 4})
            assert "error" in bad
            writer.close()
            await server.stop()

        asyncio.run(main())

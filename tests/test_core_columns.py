"""Unit tests for column layouts, dictionaries, and selection vectors."""

import numpy as np
import pytest

from repro.core import (
    AIRColumn,
    DataType,
    DictColumn,
    Dictionary,
    FixedColumn,
    SelectionVector,
    StringColumn,
    make_column,
)
from repro.errors import StorageError


class TestDictionary:
    def test_first_seen_order(self):
        d = Dictionary(["b", "a", "b", "c"])
        assert d.values == ["b", "a", "c"]

    def test_encode_decode_roundtrip(self):
        d = Dictionary()
        codes = d.encode(["x", "y", "x", "z"])
        assert codes.tolist() == [0, 1, 0, 2]
        assert d.decode(codes).tolist() == ["x", "y", "x", "z"]

    def test_lookup_missing(self):
        d = Dictionary(["a"])
        assert d.lookup("a") == 0
        assert d.lookup("nope") == -1

    def test_lookup_many(self):
        d = Dictionary(["a", "b"])
        assert d.lookup_many(["b", "zz", "a"]).tolist() == [1, -1, 0]

    def test_decode_one_bounds(self):
        d = Dictionary(["a"])
        assert d.decode_one(0) == "a"
        with pytest.raises(StorageError):
            d.decode_one(1)

    def test_contains(self):
        d = Dictionary(["a"])
        assert "a" in d and "b" not in d


class TestFixedColumn:
    def test_append_and_values(self):
        col = FixedColumn("x", DataType.INT64)
        col.append([1, 2, 3])
        col.append([4])
        assert col.values().tolist() == [1, 2, 3, 4]
        assert len(col) == 4

    def test_capacity_reserved(self):
        col = FixedColumn("x", DataType.INT64, data=np.arange(10))
        assert col.capacity >= 10

    def test_take(self):
        col = FixedColumn("x", DataType.INT64, data=np.arange(100))
        assert col.take(np.array([5, 0, 99])).tolist() == [5, 0, 99]

    def test_get_bounds(self):
        col = FixedColumn("x", DataType.INT64, data=[1])
        assert col.get(0) == 1
        with pytest.raises(StorageError):
            col.get(1)

    def test_put(self):
        col = FixedColumn("x", DataType.INT64, data=[1, 2, 3])
        col.put(np.array([0, 2]), [10, 30])
        assert col.values().tolist() == [10, 2, 30]

    def test_put_out_of_range(self):
        col = FixedColumn("x", DataType.INT64, data=[1])
        with pytest.raises(StorageError):
            col.put(np.array([5]), [9])

    def test_reorder(self):
        col = FixedColumn("x", DataType.INT64, data=[10, 20, 30, 40])
        col.reorder(np.array([3, 1]))
        assert col.values().tolist() == [40, 20]

    def test_string_dtype_rejected(self):
        with pytest.raises(StorageError):
            FixedColumn("s", DataType.STRING)

    def test_growth_across_many_appends(self):
        col = FixedColumn("x", DataType.INT32)
        for i in range(50):
            col.append([i])
        assert col.values().tolist() == list(range(50))


class TestAIRColumn:
    def test_tags_reference(self):
        col = AIRColumn("lo_custkey", "customer", data=np.array([0, 2, 1]))
        assert col.referenced_table == "customer"
        assert col.dtype == DataType.INT64
        assert col.take(np.array([1])).tolist() == [2]


class TestDictColumn:
    def test_roundtrip(self):
        col = DictColumn("region", values=["ASIA", "EUROPE", "ASIA"])
        assert col.values().tolist() == ["ASIA", "EUROPE", "ASIA"]
        assert col.cardinality == 2

    def test_codes_are_array_indexes(self):
        col = DictColumn("region", values=["A", "B", "A", "C"])
        assert col.codes().tolist() == [0, 1, 0, 2]

    def test_take_and_get(self):
        col = DictColumn("region", values=["A", "B", "C"])
        assert col.take(np.array([2, 0])).tolist() == ["C", "A"]
        assert col.get(1) == "B"

    def test_put_extends_dictionary(self):
        col = DictColumn("region", values=["A", "B"])
        col.put(np.array([0]), ["NEW"])
        assert col.values().tolist() == ["NEW", "B"]
        assert col.cardinality == 3

    def test_reorder(self):
        col = DictColumn("region", values=["A", "B", "C"])
        col.reorder(np.array([2, 0]))
        assert col.values().tolist() == ["C", "A"]


class TestStringColumn:
    def test_roundtrip(self):
        col = StringColumn("name", values=["alpha", "beta"])
        assert col.values().tolist() == ["alpha", "beta"]

    def test_in_place_update_via_heap(self):
        col = StringColumn("name", values=["alpha", "beta"])
        col.put(np.array([1]), ["a-much-longer-string"])
        assert col.get(1) == "a-much-longer-string"
        assert col.get(0) == "alpha"

    def test_take(self):
        col = StringColumn("name", values=["a", "b", "c"])
        assert col.take(np.array([2, 2, 0])).tolist() == ["c", "c", "a"]

    def test_reorder(self):
        col = StringColumn("name", values=["a", "b", "c"])
        col.reorder(np.array([1]))
        assert col.values().tolist() == ["b"]


class TestMakeColumn:
    def test_integers(self):
        col = make_column("x", [1, 2, 3])
        assert isinstance(col, FixedColumn)

    def test_floats(self):
        col = make_column("x", [1.5, 2.5])
        assert col.dtype == DataType.FLOAT64

    def test_low_cardinality_strings_dict_compressed(self):
        col = make_column("region", ["ASIA"] * 50 + ["EUROPE"] * 50)
        assert isinstance(col, DictColumn)

    def test_high_cardinality_strings_heap(self):
        col = make_column("name", [f"name{i}" for i in range(100)])
        assert isinstance(col, StringColumn)


class TestSelectionVector:
    def test_full_and_empty(self):
        assert len(SelectionVector.full(5)) == 5
        assert len(SelectionVector.empty(5)) == 0

    def test_from_mask(self):
        sv = SelectionVector.from_mask(np.array([True, False, True]))
        assert sv.positions.tolist() == [0, 2]
        assert sv.domain == 3

    def test_refine_shrinks(self):
        sv = SelectionVector.full(4)
        sv2 = sv.refine(np.array([True, False, True, False]))
        assert sv2.positions.tolist() == [0, 2]
        # original untouched
        assert len(sv) == 4

    def test_refine_length_mismatch(self):
        with pytest.raises(StorageError):
            SelectionVector.full(4).refine(np.array([True]))

    def test_selectivity(self):
        sv = SelectionVector.from_mask(np.array([True, False, False, False]))
        assert sv.selectivity == 0.25

    def test_intersect(self):
        a = SelectionVector(np.array([0, 1, 5]), 10)
        b = SelectionVector(np.array([1, 5, 7]), 10)
        assert a.intersect(b).positions.tolist() == [1, 5]

    def test_intersect_domain_mismatch(self):
        with pytest.raises(StorageError):
            SelectionVector.full(3).intersect(SelectionVector.full(4))

    def test_to_bitmap(self):
        sv = SelectionVector(np.array([2, 3]), 6)
        assert sv.to_bitmap().to_indices().tolist() == [2, 3]

    def test_out_of_domain_rejected(self):
        with pytest.raises(StorageError):
            SelectionVector(np.array([7]), 5)

"""Tests for the SSB / TPC-H / TPC-DS data generators."""

import numpy as np
import pytest

from repro.core import AIRColumn
from repro.datagen import (
    NATION_LIST,
    REGIONS,
    city_of,
    generate_ssb,
    generate_tpcds,
    generate_tpch,
)


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(sf=0.002, seed=7)


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(sf=0.002, seed=7)


@pytest.fixture(scope="module")
def tpcds():
    return generate_tpcds(sf=0.002, seed=7)


class TestSSB:
    def test_tables_present(self, ssb):
        assert set(ssb.tables) == {"lineorder", "date", "customer", "supplier", "part"}

    def test_root_is_lineorder(self, ssb):
        assert ssb.roots() == ["lineorder"]

    def test_scale(self, ssb):
        assert ssb.table("lineorder").num_rows == 12_000
        assert ssb.table("customer").num_rows == 60
        # the date dimension is fixed at 7 years regardless of SF
        assert ssb.table("date").num_rows == 2_557

    def test_fact_fks_are_air(self, ssb):
        lo = ssb.table("lineorder")
        for fk in ("lo_custkey", "lo_suppkey", "lo_partkey", "lo_orderdate"):
            assert isinstance(lo[fk], AIRColumn)
            vals = lo[fk].values()
            parent = ssb.table(lo[fk].referenced_table)
            assert vals.min() >= 0 and vals.max() < parent.num_rows

    def test_air_consistency_with_keys(self, ssb):
        """AIR positions must decode to the original key values."""
        raw = generate_ssb(sf=0.002, seed=7, airify=False)
        lo_air = ssb.table("lineorder")["lo_orderdate"].values()
        lo_raw = raw.table("lineorder")["lo_orderdate"].values()
        datekeys = ssb.table("date")["d_datekey"].values()
        assert np.array_equal(datekeys[lo_air], lo_raw)

    def test_deterministic(self):
        a = generate_ssb(sf=0.001, seed=3)
        b = generate_ssb(sf=0.001, seed=3)
        assert np.array_equal(
            a.table("lineorder")["lo_revenue"].values(),
            b.table("lineorder")["lo_revenue"].values(),
        )

    def test_seed_changes_data(self):
        a = generate_ssb(sf=0.001, seed=3)
        b = generate_ssb(sf=0.001, seed=4)
        assert not np.array_equal(
            a.table("lineorder")["lo_revenue"].values(),
            b.table("lineorder")["lo_revenue"].values(),
        )

    def test_value_domains(self, ssb):
        lo = ssb.table("lineorder")
        assert lo["lo_discount"].values().min() >= 0
        assert lo["lo_discount"].values().max() <= 10
        assert lo["lo_quantity"].values().min() >= 1
        assert lo["lo_quantity"].values().max() <= 50
        cust = ssb.table("customer")
        assert set(cust["c_region"].values()) <= set(REGIONS)
        assert set(cust["c_nation"].values()) <= set(NATION_LIST)

    def test_revenue_formula(self, ssb):
        lo = ssb.table("lineorder")
        expected = (lo["lo_extendedprice"].values()
                    * (100 - lo["lo_discount"].values()) // 100)
        assert np.array_equal(lo["lo_revenue"].values(), expected)

    def test_city_encoding(self):
        assert city_of("UNITED KINGDOM", 1) == "UNITED KI1"
        assert city_of("CHINA", 0) == "CHINA    0"

    def test_part_hierarchy(self, ssb):
        part = ssb.table("part")
        for mfgr, cat, brand in zip(part["p_mfgr"].values(),
                                    part["p_category"].values(),
                                    part["p_brand1"].values()):
            assert cat.startswith(mfgr)
            assert brand.startswith(cat)

    def test_date_dimension_fields(self, ssb):
        d = ssb.table("date")
        years = d["d_year"].values()
        assert years.min() == 1992 and years.max() == 1998
        ymn = d["d_yearmonthnum"].values()
        assert ymn[0] == 199201
        assert d["d_yearmonth"].get(0) == "Jan1992"


class TestTPCH:
    def test_snowflake_paths(self, tpch):
        paths = tpch.reference_paths("lineitem")
        chains = {str(p) for p in paths}
        assert "lineitem -> orders -> customer -> nation -> region" in chains

    def test_root(self, tpch):
        assert tpch.roots() == ["lineitem"]

    def test_nation_region_mapping(self, tpch):
        nation = tpch.table("nation")
        region = tpch.table("region")
        rk = nation["n_regionkey"].values()
        assert len(nation) == 25
        assert all(region["r_name"].get(int(k)) in REGIONS for k in rk)

    def test_air_chain(self, tpch):
        orders = tpch.table("orders")
        assert isinstance(orders["o_custkey"], AIRColumn)
        assert orders["o_custkey"].values().max() < tpch.table("customer").num_rows


class TestTPCDS:
    def test_tables(self, tpcds):
        assert "store_sales" in tpcds.tables
        assert len(tpcds.tables) == 10

    def test_roots(self, tpcds):
        # store_returns references store_sales, so the only true root is
        # store_returns; store_sales is the root of its own star.
        assert set(tpcds.roots()) == {"store_returns"}

    def test_star_paths_from_sales(self, tpcds):
        paths = tpcds.reference_paths("store_sales")
        assert len(paths) == 8

    def test_air_bounds(self, tpcds):
        ss = tpcds.table("store_sales")
        assert ss["ss_item_sk"].values().max() < tpcds.table("item").num_rows

"""Differential testing: randomized star schemas and queries, all engines
must agree.

Hypothesis generates a random star schema (dimension sizes, value
domains), random fact data, and a random SPJGA query (filters, group
keys, aggregates); the query runs on every A-Store variant and on the
baseline engines, and all answers must be identical.  This exercises the
whole stack — binder, optimizer, predicate vectors, group-vector fusion,
array/hash aggregation, hash-join baselines — far beyond the fixed SSB
workload.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FusedEngine, MaterializingEngine
from repro.core import Database
from repro.engine import AStoreEngine, EngineOptions

REGIONS = ["north", "south", "east", "west"]
TIERS = ["gold", "silver", "bronze"]


@st.composite
def star_case(draw):
    """A random (schema, data, query) triple."""
    n_dim_a = draw(st.integers(min_value=1, max_value=12))
    n_dim_b = draw(st.integers(min_value=1, max_value=6))
    n_fact = draw(st.integers(min_value=0, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)

    dim_a = {
        "a_key": np.arange(100, 100 + n_dim_a),
        "a_region": [REGIONS[i % len(REGIONS)] for i in range(n_dim_a)],
        "a_rank": rng.integers(0, 5, n_dim_a),
    }
    dim_b = {
        "b_key": np.arange(500, 500 + n_dim_b),
        "b_tier": [TIERS[i % len(TIERS)] for i in range(n_dim_b)],
    }
    fact = {
        "f_a": rng.integers(100, 100 + n_dim_a, n_fact),
        "f_b": rng.integers(500, 500 + n_dim_b, n_fact),
        "f_value": rng.integers(-50, 200, n_fact),
        "f_qty": rng.integers(1, 10, n_fact),
    }

    # random query pieces
    filters = []
    if draw(st.booleans()):
        filters.append(f"f_value >= {draw(st.integers(-60, 210))}")
    if draw(st.booleans()):
        filters.append(
            f"a_region = '{draw(st.sampled_from(REGIONS))}'")
    if draw(st.booleans()):
        lo = draw(st.integers(0, 4))
        filters.append(f"a_rank BETWEEN {lo} AND {lo + 1}")
    if draw(st.booleans()):
        filters.append(f"b_tier IN ('gold', '{draw(st.sampled_from(TIERS))}')")
    group_keys = draw(st.sets(
        st.sampled_from(["a_region", "b_tier", "f_qty"]),
        min_size=0, max_size=3))
    aggregates = ["count(*) AS n", "sum(f_value) AS s",
                  "min(f_value) AS lo", "max(f_value) AS hi"]

    select = ", ".join(sorted(group_keys) + aggregates)
    sql = f"SELECT {select} FROM fact, dim_a, dim_b"
    if filters:
        sql += " WHERE " + " AND ".join(filters)
    if group_keys:
        keys = ", ".join(sorted(group_keys))
        sql += f" GROUP BY {keys} ORDER BY {keys}"
    return dim_a, dim_b, fact, sql


def build_db(dim_a, dim_b, fact, airify):
    db = Database("random_star")
    db.create_table("dim_a", dim_a, dict_threshold=1.0)
    db.create_table("dim_b", dim_b, dict_threshold=1.0)
    db.create_table("fact", fact)
    db.add_reference("fact", "f_a", "dim_a", "a_key")
    db.add_reference("fact", "f_b", "dim_b", "b_key")
    if airify:
        db.airify()
    return db


def rows_equal(a, b) -> bool:
    """Tuple-row equality where NaN == NaN (empty MIN/MAX results)."""
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if len(ra) != len(rb):
            return False
        for va, vb in zip(ra, rb):
            both_nan = (isinstance(va, float) and isinstance(vb, float)
                        and va != va and vb != vb)
            if not both_nan and va != vb:
                return False
    return True


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(case=star_case())
    def test_variants_and_baselines_agree(self, case):
        dim_a, dim_b, fact, sql = case
        air = build_db(dim_a, dim_b, fact, airify=True)
        raw = build_db(dim_a, dim_b, fact, airify=False)

        reference = AStoreEngine(air).query(sql).rows()
        for variant in ("AIRScan_R", "AIRScan_C", "AIRScan_C_P"):
            got = AStoreEngine.variant(air, variant).query(sql).rows()
            assert rows_equal(got, reference), f"{variant} diverged on: {sql}"
        parallel = AStoreEngine(air, EngineOptions(workers=3)).query(sql)
        assert rows_equal(parallel.rows(), reference)

        for engine in (FusedEngine(raw), MaterializingEngine(raw)):
            got = engine.query(sql).rows()
            assert rows_equal(got, reference), f"{engine.name} diverged on: {sql}"

    @settings(max_examples=25, deadline=None)
    @given(case=star_case())
    def test_oracle_agreement_scalar(self, case):
        """When no GROUP BY was drawn, check against a Python oracle."""
        dim_a, dim_b, fact, sql = case
        if "GROUP BY" in sql:
            return
        air = build_db(dim_a, dim_b, fact, airify=True)
        result = AStoreEngine(air).query(sql).to_dicts()[0]

        # re-evaluate the filters row by row in plain Python
        a_index = {int(k): i for i, k in enumerate(dim_a["a_key"])}
        b_index = {int(k): i for i, k in enumerate(dim_b["b_key"])}
        survivors = []
        for i in range(len(fact["f_value"])):
            ai = a_index[int(fact["f_a"][i])]
            bi = b_index[int(fact["f_b"][i])]
            row = {
                "f_value": int(fact["f_value"][i]),
                "a_region": dim_a["a_region"][ai],
                "a_rank": int(dim_a["a_rank"][ai]),
                "b_tier": dim_b["b_tier"][bi],
            }
            if _passes(sql, row):
                survivors.append(row["f_value"])
        assert result["n"] == len(survivors)
        expected_sum = sum(survivors)
        assert result["s"] == expected_sum


def _passes(sql, row) -> bool:
    import re

    if "WHERE" not in sql:
        return True
    clause = sql.split("WHERE", 1)[1]
    # protect 'BETWEEN x AND y' from the conjunct split
    clause = re.sub(r"BETWEEN (\S+) AND (\S+)", r"BETWEEN \1..\2", clause)
    for part in clause.split(" AND "):
        part = part.strip()
        if part.startswith("f_value >="):
            if not row["f_value"] >= int(part.split(">=")[1]):
                return False
        elif part.startswith("a_region ="):
            if row["a_region"] != part.split("'")[1]:
                return False
        elif part.startswith("a_rank BETWEEN"):
            bounds = part.replace("a_rank BETWEEN", "").strip()
            lo, hi = (int(x) for x in bounds.split(".."))
            if not lo <= row["a_rank"] <= hi:
                return False
        elif part.startswith("b_tier IN"):
            allowed = [s for s in part.split("'")[1::2]]
            if row["b_tier"] not in allowed:
                return False
    return True

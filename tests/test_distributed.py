"""Fault-tolerant distributed scatter-gather: the chaos matrix.

Contracts, each over *real* spawned shard-node processes (or the real
process pool / serve loop for the satellite paths):

* **differential** — a 2-node coordinator answers all 13 SSB queries
  byte-identically to a serial no-cache ground truth (JSON
  round-tripped, i.e. exactly what a client sees), with zero recovery
  counters and a clean node shutdown;
* **node loss** — a node SIGKILLed mid-flight (for determinism: a
  ``kill@node.request`` chaos rule, which dies *holding a request*) is
  retried, declared lost, and its shards re-scatter to survivors — the
  flight still returns the serial answer and ``ExecutionStats`` records
  the retries / re-shards / losses;
* **deadline** — a node delayed past ``node_timeout`` is
  indistinguishable from a dead one: retries, loss, re-shard;
* **flaky transport** — a dropped connection or a corrupted response
  frame costs one retry on the same node, not a node loss;
* **stamp fencing** — after a coordinator-side mutation, nodes holding
  pre-mutation copies *refuse* their shards (stamp lane) and the
  coordinator degrades them to local execution: the answer reflects the
  mutation, never the stale copy;
* **pool death** (satellite) — a SIGKILLed process-pool worker surfaces
  as a typed :class:`ShardExecutionError`, the engine degrades that
  query to serial shards (``shard_fallbacks``), and the next query gets
  a fresh pool;
* **serve deadline** (satellite) — a request past its ``timeout_ms``
  answers a structured ``{"timeout": true}`` error;
* **respawn backoff** (satellite) — a crash-looping fleet worker is
  respawned with exponentially growing, logged backoff.

Every fault is armed through :mod:`repro.engine.chaos`, so each
recovery path reproduces deterministically.
"""

import asyncio
import json
import os
import signal
import time

import pytest

from repro.engine.chaos import (
    ChaosController,
    ChaosDrop,
    ChaosError,
    clear_chaos,
    format_rules,
    install_chaos,
    parse_rules,
)
from repro.engine.distributed import LocalNodes, RemoteShardBackend
from repro.engine.executor import AStoreEngine, EngineOptions
from repro.engine.sharding import database_stamp
from repro.errors import ExecutionError
from repro.io import load_database, save_database
from repro.workloads import SSB_QUERIES

from .conftest import build_tiny_star

pytestmark = pytest.mark.skipif(
    os.name != "posix",
    reason="shard nodes are spawned POSIX processes")

SQL_YEAR = ("SELECT d_year, sum(lo_revenue) AS revenue "
            "FROM lineorder, date GROUP BY d_year")


@pytest.fixture(scope="module")
def ssb_path(tmp_path_factory, ssb_air):
    """The session SSB database saved to an archive every shard node
    (and the coordinator) loads its own copy from — identical mutation
    stamps all around."""
    path = str(tmp_path_factory.mktemp("dist") / "ssb.npz")
    save_database(ssb_air, path)
    return path


@pytest.fixture(scope="module")
def ssb_db(ssb_path):
    return load_database(ssb_path)


@pytest.fixture(scope="module")
def ssb_truth(ssb_db):
    with AStoreEngine(ssb_db, EngineOptions(parallel_backend="serial",
                                            use_cache=False)) as serial:
        return {qid: client_rows(serial.query(sql))
                for qid, sql in SSB_QUERIES.items()}


@pytest.fixture(autouse=True)
def _disarm_chaos():
    yield
    clear_chaos()
    os.environ.pop("ASTORE_CHAOS", None)


def client_rows(result):
    """Rows as a client would see them (JSON round-tripped)."""
    return json.loads(json.dumps(
        [[str(value) for value in row] for row in result.rows()]))


def remote_engine(db, nodes, **overrides):
    overrides.setdefault("node_timeout", 15.0)
    return AStoreEngine(db, EngineOptions(
        parallel_backend="remote", remote_nodes=nodes.addresses,
        use_cache=False, **overrides))


class TestChaosRules:
    def test_parse_format_round_trip(self):
        spec = "kill@node.request:3;delay@node.run:1x0=0.4;drop@node.response"
        rules = parse_rules(spec)
        assert [r.action for r in rules] == ["kill", "delay", "drop"]
        assert rules[0].first == 3 and rules[0].count == 1
        assert rules[1].count == 0 and rules[1].value == 0.4
        assert parse_rules(format_rules(rules)) == rules

    @pytest.mark.parametrize("bad", ["explode@x", "kill@", "kill", "@site"])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_rules(bad)

    def test_rules_fire_on_exact_hits(self):
        controller = ChaosController(parse_rules("drop@node.request:2"))
        controller.fire("node.request")  # hit 1: not due
        with pytest.raises(ChaosDrop):
            controller.fire("node.request")  # hit 2: due
        controller.fire("node.request")  # hit 3: spent
        assert controller.fired == [("node.request", "drop", 2)]

    def test_unbounded_error_rule(self):
        controller = ChaosController(parse_rules("error@node.run:1x0"))
        for _ in range(3):
            with pytest.raises(ChaosError):
                controller.fire("node.run")

    def test_corrupt_flips_payload_bytes(self):
        controller = ChaosController(parse_rules("corrupt@node.response"))
        garbled = controller.fire("node.response", b"pickle-bytes")
        assert garbled != b"pickle-bytes" and len(garbled) == 12
        assert controller.fire("node.response", b"pickle-bytes") == b"pickle-bytes"

    def test_delay_uses_injected_sleeper(self):
        controller = ChaosController(parse_rules("delay@serve.request=0.25"))
        slept = []
        controller.fire("serve.request", sleeper=slept.append)
        assert slept == [0.25]


class TestStampLane:
    def test_admits_exactly_current_stamps(self, tiny_star):
        from repro.core.shmcache import StampLane

        lane = StampLane()
        stamps = database_stamp(tiny_star)
        assert lane.admits(stamps, tiny_star)
        # a published count ahead of the local copy fences it off
        lane.publish((("lineorder", 99),))
        assert lane.published_count("lineorder") == 99
        assert not lane.admits(stamps, tiny_star)
        # stamps that disagree with the local data are refused outright
        wrong = tuple((name, count + 1) for name, count in stamps)
        assert not StampLane().admits(wrong, tiny_star)


class TestHealthyFlight:
    def test_differential_and_clean_shutdown(self, ssb_path, ssb_db,
                                             ssb_truth):
        before = set(os.listdir("/dev/shm")) if os.path.isdir(
            "/dev/shm") else set()
        with LocalNodes(ssb_path, count=2) as nodes:
            with remote_engine(ssb_db, nodes) as engine:
                for qid, sql in SSB_QUERIES.items():
                    result = engine.query(sql)
                    assert client_rows(result) == ssb_truth[qid], qid
                    stats = result.stats
                    assert (stats.remote_retries, stats.remote_reshards,
                            stats.remote_nodes_lost,
                            stats.remote_local_shards) == (0, 0, 0, 0), qid
            assert nodes.shutdown()
            pids = [node.pid for node in nodes.nodes]
        for pid in pids:  # no orphaned node processes
            with pytest.raises(OSError):
                os.kill(pid, 0)
        if os.path.isdir("/dev/shm"):  # remote sharding never touches shm
            leaked = {name for name in set(os.listdir("/dev/shm")) - before
                      if name.startswith(("psm_", "astore"))}
            assert not leaked

    def test_empty_node_list_is_a_typed_error(self, ssb_db):
        with pytest.raises(ExecutionError, match="node addresses"):
            with AStoreEngine(ssb_db, EngineOptions(
                    parallel_backend="remote", use_cache=False)) as engine:
                engine.query(SQL_YEAR)

    def test_bad_address_is_a_typed_error(self, ssb_db):
        with pytest.raises(ExecutionError, match="host:port"):
            RemoteShardBackend(ssb_db, ["nonsense"])


class TestNodeLoss:
    def test_sigkill_mid_flight_reshards_to_survivor(self, ssb_path, ssb_db,
                                                     ssb_truth):
        qids = list(SSB_QUERIES)
        with LocalNodes(ssb_path, count=2) as nodes:
            with remote_engine(ssb_db, nodes) as engine:
                lost = reshards = retries = 0
                for position, qid in enumerate(qids):
                    if position == len(qids) // 2:
                        nodes.kill(0)
                    result = engine.query(SSB_QUERIES[qid])
                    assert client_rows(result) == ssb_truth[qid], qid
                    lost += result.stats.remote_nodes_lost
                    reshards += result.stats.remote_reshards
                    retries += result.stats.remote_retries
                assert lost == 1 and reshards >= 1 and retries >= 1
            assert nodes.shutdown()  # the survivor drains cleanly

    def test_chaos_kill_dies_holding_a_request(self, ssb_path, ssb_db):
        # node 0 exits with 137 on its first request — after reading a
        # shard request, before answering: death mid-query, not at a
        # connection boundary
        with LocalNodes(ssb_path, count=2,
                        chaos=["kill@node.request"]) as nodes:
            with remote_engine(ssb_db, nodes) as engine:
                result = engine.query(SQL_YEAR)
                assert result.stats.remote_nodes_lost == 1
                assert result.stats.remote_reshards >= 1
                # the answer is still exact
                with AStoreEngine(ssb_db, EngineOptions(
                        parallel_backend="serial",
                        use_cache=False)) as serial:
                    assert client_rows(result) == client_rows(
                        serial.query(SQL_YEAR))
            assert nodes.nodes[0].process.exitcode == 137

    def test_delay_past_deadline_counts_as_loss(self, ssb_path, ssb_db):
        # every execution on node 0 stalls 0.6 s against a 0.15 s
        # deadline: retries fire (with backoff), then the node is lost
        # and its shards re-scatter
        with LocalNodes(ssb_path, count=2,
                        chaos=["delay@node.run:1x0=0.6"]) as nodes:
            with remote_engine(ssb_db, nodes, node_timeout=0.15,
                               node_retries=1) as engine:
                result = engine.query(SQL_YEAR)
                stats = result.stats
                assert stats.remote_retries >= 1
                assert stats.remote_nodes_lost == 1
                assert stats.remote_reshards >= 1
                with AStoreEngine(ssb_db, EngineOptions(
                        parallel_backend="serial",
                        use_cache=False)) as serial:
                    assert client_rows(result) == client_rows(
                        serial.query(SQL_YEAR))
            assert nodes.shutdown()

    def test_dropped_response_is_one_retry_not_a_loss(self, ssb_path,
                                                      ssb_db, ssb_truth):
        with LocalNodes(ssb_path, count=2,
                        chaos=["drop@node.response:2"]) as nodes:
            with remote_engine(ssb_db, nodes) as engine:
                flight_retries = 0
                for qid, sql in SSB_QUERIES.items():
                    result = engine.query(sql)
                    assert client_rows(result) == ssb_truth[qid], qid
                    assert result.stats.remote_nodes_lost == 0, qid
                    flight_retries += result.stats.remote_retries
                assert flight_retries == 1
            assert nodes.shutdown()

    def test_corrupted_response_is_one_retry_not_a_loss(self, ssb_path,
                                                        ssb_db, ssb_truth):
        with LocalNodes(ssb_path, count=2,
                        chaos=["corrupt@node.response:2"]) as nodes:
            with remote_engine(ssb_db, nodes) as engine:
                flight_retries = 0
                for qid, sql in SSB_QUERIES.items():
                    result = engine.query(sql)
                    assert client_rows(result) == ssb_truth[qid], qid
                    assert result.stats.remote_nodes_lost == 0, qid
                    flight_retries += result.stats.remote_retries
                assert flight_retries == 1
            assert nodes.shutdown()

    def test_all_nodes_lost_degrades_to_local(self, ssb_path, ssb_db,
                                              ssb_truth):
        with LocalNodes(ssb_path, count=1) as nodes:
            with remote_engine(ssb_db, nodes) as engine:
                nodes.kill(0)
                result = engine.query(SQL_YEAR)
                stats = result.stats
                assert stats.remote_nodes_lost == 1
                assert stats.remote_local_shards >= 1
                with AStoreEngine(ssb_db, EngineOptions(
                        parallel_backend="serial",
                        use_cache=False)) as serial:
                    assert client_rows(result) == client_rows(
                        serial.query(SQL_YEAR))


class TestStampFencing:
    def test_mutation_fences_stale_nodes(self, tmp_path):
        db = build_tiny_star()
        path = str(tmp_path / "tiny.npz")
        save_database(db, path)
        coordinator_db = load_database(path)
        with LocalNodes(path, count=2) as nodes:
            with remote_engine(coordinator_db, nodes) as engine:
                pre = engine.query(SQL_YEAR)
                assert pre.stats.remote_local_shards == 0
                # mutate the coordinator's copy only: every node now
                # holds pre-mutation data and must refuse its shards
                coordinator_db.table("lineorder").update(
                    [0], {"lo_revenue": [10_000]})
                post = engine.query(SQL_YEAR)
                assert post.stats.remote_local_shards >= 1
                with AStoreEngine(coordinator_db, EngineOptions(
                        parallel_backend="serial",
                        use_cache=False)) as serial:
                    assert client_rows(post) == client_rows(
                        serial.query(SQL_YEAR))
                assert client_rows(post) != client_rows(pre)
                backend = engine._shard_backend
                assert backend.counters["stale_refusals"] >= 1
            assert nodes.shutdown()


class TestProcessPoolDeath:
    def test_worker_sigkill_degrades_to_serial(self, ssb_air):
        with AStoreEngine(ssb_air, EngineOptions(
                parallel_backend="process", workers=2,
                use_cache=False)) as engine:
            with AStoreEngine(ssb_air, EngineOptions(
                    parallel_backend="serial", use_cache=False)) as serial:
                truth = client_rows(serial.query(SQL_YEAR))
            first = engine.query(SQL_YEAR)
            assert client_rows(first) == truth
            assert first.stats.shard_fallbacks == 0
            # SIGKILL one pool worker: the next sharded run must surface
            # as a typed fallback, not a hang or a raw BrokenProcessPool
            victim = next(iter(engine._shard_backend._pool._processes))
            os.kill(victim, signal.SIGKILL)
            degraded = engine.query(SQL_YEAR)
            assert client_rows(degraded) == truth
            assert degraded.stats.shard_fallbacks == 1
            # the broken backend was evicted: the next query runs on a
            # fresh pool, cleanly
            recovered = engine.query(SQL_YEAR)
            assert client_rows(recovered) == truth
            assert recovered.stats.shard_fallbacks == 0


class TestServeDeadline:
    def test_timeout_ms_answers_structured_error(self, tiny_star):
        from repro.engine.serve import AsyncEngine, serve_tcp

        install_chaos("delay@serve.request:1x0=0.5")

        async def main():
            engine = AsyncEngine(tiny_star, options=EngineOptions(
                parallel_backend="serial", cache_results=False))
            server = await serve_tcp(engine, "127.0.0.1", 0)
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write((json.dumps(
                    {"id": 1, "sql": SQL_YEAR, "timeout_ms": 50})
                    + "\n").encode())
                await writer.drain()
                timed_out = json.loads(await reader.readline())
                clear_chaos()
                writer.write((json.dumps(
                    {"id": 2, "sql": SQL_YEAR, "timeout_ms": 30_000})
                    + "\n").encode())
                await writer.drain()
                answered = json.loads(await reader.readline())
                writer.close()
            finally:
                await server.stop()
            return timed_out, answered, server.failures

        timed_out, answered, failures = asyncio.run(main())
        assert timed_out["timeout"] is True and timed_out["id"] == 1
        assert "deadline exceeded" in timed_out["error"]
        assert answered["id"] == 2 and answered["rows"]
        assert failures == 1

    def test_server_wide_deadline_from_run_server_param(self, tiny_star):
        from repro.engine.serve import AsyncEngine, serve_tcp

        install_chaos("delay@serve.request:1x0=0.5")

        async def main():
            engine = AsyncEngine(tiny_star, options=EngineOptions(
                parallel_backend="serial", cache_results=False))
            server = await serve_tcp(engine, "127.0.0.1", 0,
                                     request_timeout=0.05)
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write((SQL_YEAR + "\n").encode())
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
            finally:
                await server.stop()
            return response

        response = asyncio.run(main())
        assert response["timeout"] is True


class TestFleetRespawnBackoff:
    @pytest.mark.skipif(
        not __import__("repro.core.shmcache",
                       fromlist=["store_available"]).store_available(),
        reason="the serving fleet needs POSIX shared memory")
    def test_crash_streak_backs_off_exponentially(self, tmp_path):
        import threading

        from repro.engine.fleet import ServeFleet

        db = build_tiny_star()
        path = str(tmp_path / "tiny.npz")
        save_database(db, path)
        messages = []
        fleet = ServeFleet(
            database_path=path, data_mode="copy", workers=1,
            options=EngineOptions(parallel_backend="serial",
                                  cache_results=True),
            port=0, shared_store=False, respawn_base=0.1, respawn_cap=2.0,
            announce=messages.append)
        fleet.start()
        waiter = threading.Thread(target=fleet.wait, daemon=True)
        waiter.start()
        try:
            for expected in (1, 2):  # two quick kills = a crash streak
                pid = fleet._workers[0].process.pid
                os.kill(pid, signal.SIGKILL)
                deadline = time.monotonic() + 60
                while (len(fleet.respawn_backoffs) < expected
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                assert len(fleet.respawn_backoffs) == expected
                # wait for the respawned worker to come up
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    worker = fleet._workers.get(0)
                    if worker is not None and worker.process.is_alive():
                        break
                    time.sleep(0.02)
                else:
                    raise AssertionError("worker never respawned")
        finally:
            fleet.request_stop()
            waiter.join(timeout=120)
            fleet.close()
        first, second = fleet.respawn_backoffs
        # base*(1+jitter<=0.25) < base*2: the streak doubled the wait
        assert 0.1 <= first <= 0.125 * 1.001
        assert 0.2 <= second <= 0.25 * 1.001
        assert sum("respawning in" in m for m in messages) == 2
        assert any("crash 2" in m for m in messages)

    def test_chaos_kill_on_spawn_fails_startup_deterministically(
            self, tmp_path):
        if not __import__("repro.core.shmcache",
                          fromlist=["store_available"]).store_available():
            pytest.skip("fleet needs POSIX shared memory")
        from repro.engine.fleet import ServeFleet
        from repro.errors import AStoreError

        db = build_tiny_star()
        path = str(tmp_path / "tiny.npz")
        save_database(db, path)
        os.environ["ASTORE_CHAOS"] = "kill@fleet.worker"
        try:
            fleet = ServeFleet(
                database_path=path, data_mode="copy", workers=1,
                options=EngineOptions(parallel_backend="serial"),
                port=0, shared_store=False)
            with pytest.raises(AStoreError, match="died during startup"):
                fleet.start()
        finally:
            os.environ.pop("ASTORE_CHAOS", None)


class TestDistributedSweep:
    def test_bench_mode_records_recovery(self, ssb_path):
        from repro.bench import distributed_sweep

        times = distributed_sweep(database_path=ssb_path, node_count=2,
                                  query_ids=["Q1.1", "Q2.1", "Q3.1", "Q4.1"])
        assert times["healthy"]["mismatches"] == []
        assert times["healthy"]["clean_shutdown"]
        degraded = times["degraded"]
        assert degraded["mismatches"] == []
        assert degraded["nodes_lost"] >= 1
        assert degraded["reshards"] >= 1
        assert degraded["clean_shutdown"]
        assert times["recovered"]

"""Tests for the AIRScan executor: correctness on hand-checkable data,
variant equivalence, parallel merge, snapshots, projections, ordering."""

import pytest

from repro.engine import AStoreEngine, EngineOptions, VARIANTS
from repro.errors import ExecutionError


class TestScalarAggregates:
    def test_count_star(self, tiny_star):
        n = AStoreEngine(tiny_star).query(
            "SELECT count(*) AS n FROM lineorder").scalar()
        assert n == 8

    def test_sum_with_fact_filter(self, tiny_star):
        total = AStoreEngine(tiny_star).query(
            "SELECT sum(lo_revenue) AS s FROM lineorder "
            "WHERE lo_discount <= 2").scalar()
        assert total == 10 + 20 + 50 + 60

    def test_avg_min_max(self, tiny_star):
        r = AStoreEngine(tiny_star).query(
            "SELECT avg(lo_revenue) AS a, min(lo_revenue) AS lo, "
            "max(lo_revenue) AS hi FROM lineorder")
        assert r.to_dicts()[0] == {"a": 45.0, "lo": 10, "hi": 80}

    def test_empty_selection_scalar(self, tiny_star):
        r = AStoreEngine(tiny_star).query(
            "SELECT count(*) AS n, sum(lo_revenue) AS s FROM lineorder "
            "WHERE lo_revenue > 999")
        assert r.to_dicts()[0]["n"] == 0
        assert r.to_dicts()[0]["s"] == 0

    def test_measure_expression(self, tiny_star):
        total = AStoreEngine(tiny_star).query(
            "SELECT sum(lo_revenue * lo_discount) AS s FROM lineorder"
        ).scalar()
        assert total == 10 + 40 + 90 + 160 + 50 + 120 + 210 + 320


class TestStarJoins:
    def test_dim_filter(self, tiny_star):
        total = AStoreEngine(tiny_star).query(
            "SELECT sum(lo_revenue) AS s FROM lineorder, customer "
            "WHERE lo_custkey = c_custkey AND c_region = 'ASIA'").scalar()
        # customers 1,2 (positions 0,1): rows 0,1,4,5 -> 10+20+50+60
        assert total == 140

    def test_two_dim_filters(self, tiny_star):
        total = AStoreEngine(tiny_star).query("""
            SELECT sum(lo_revenue) AS s FROM lineorder, customer, date
            WHERE lo_custkey = c_custkey AND lo_orderdate = d_datekey
              AND c_region = 'ASIA' AND d_year = 1998
        """).scalar()
        # ASIA rows {0,1,4,5} & 1998 rows {4,5,7} -> {4,5} -> 50+60
        assert total == 110

    def test_group_by_dim(self, tiny_star):
        r = AStoreEngine(tiny_star).query("""
            SELECT d_year, sum(lo_revenue) AS s FROM lineorder, date
            WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year
        """)
        assert r.rows() == [(1997, 10 + 20 + 30 + 40 + 70), (1998, 190)]

    def test_group_by_fact_and_dim(self, tiny_star):
        r = AStoreEngine(tiny_star).query("""
            SELECT d_year, lo_discount, count(*) AS n FROM lineorder, date
            WHERE lo_orderdate = d_datekey AND lo_discount <= 2
            GROUP BY d_year, lo_discount ORDER BY d_year, lo_discount
        """)
        assert r.rows() == [(1997, 1, 1), (1997, 2, 1), (1998, 1, 1),
                            (1998, 2, 1)]

    def test_group_key_output_order_respected(self, tiny_star):
        r = AStoreEngine(tiny_star).query("""
            SELECT sum(lo_revenue) AS s, c_nation FROM lineorder, customer
            WHERE lo_custkey = c_custkey GROUP BY c_nation ORDER BY c_nation
        """)
        assert r.column_order == ["s", "c_nation"]
        assert r.rows()[0] == (40 + 80, "BRAZIL")


class TestSnowflake:
    def test_paper_q3_adaptation(self, tiny_snowflake):
        r = AStoreEngine(tiny_snowflake).query("""
            SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
            FROM customer, lineitem, orders, nation, region
            WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey
              AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey
              AND r_name = 'ASIA' AND o_price >= 800
            GROUP BY n_name ORDER BY revenue DESC
        """)
        # ASIA nations: CHINA(cust7), JAPAN(cust9); orders >= 800: 71, 72
        # order 71 belongs to FRANCE (EUROPE, excluded); order 72 -> JAPAN
        assert r.rows() == [("JAPAN", 40.0)]

    def test_snowflake_group_on_deep_table(self, tiny_snowflake):
        r = AStoreEngine(tiny_snowflake).query("""
            SELECT r_name, count(*) AS n FROM lineitem, orders, customer,
                   nation, region
            GROUP BY r_name ORDER BY r_name
        """)
        # lineitem chain regions: ASIA,ASIA,EUROPE,ASIA,ASIA,ASIA
        assert r.rows() == [("ASIA", 5), ("EUROPE", 1)]


class TestVariantsAgree:
    QUERIES = [
        "SELECT count(*) AS n FROM lineorder",
        """SELECT d_year, sum(lo_revenue) AS s FROM lineorder, date, customer
           WHERE c_region = 'ASIA' AND lo_discount BETWEEN 1 AND 3
           GROUP BY d_year ORDER BY d_year""",
        """SELECT c_nation, d_year, count(*) AS n, min(lo_revenue) AS lo,
                  max(lo_revenue) AS hi, avg(lo_quantity) AS q
           FROM lineorder, date, customer
           GROUP BY c_nation, d_year ORDER BY c_nation, d_year""",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_all_variants_same_rows(self, tiny_star, sql):
        reference = None
        for variant in VARIANTS:
            rows = AStoreEngine.variant(tiny_star, variant).query(sql).rows()
            if reference is None:
                reference = rows
            assert rows == reference, variant

    def test_variant_unknown(self, tiny_star):
        with pytest.raises(ExecutionError):
            AStoreEngine.variant(tiny_star, "AIRScan_Z")

    def test_variant_stats_report_strategy(self, tiny_star):
        sql = ("SELECT d_year, count(*) AS n FROM lineorder, date "
               "WHERE d_year = 1997 GROUP BY d_year")
        g = AStoreEngine.variant(tiny_star, "AIRScan_C_P_G").query(sql)
        assert g.stats.used_array_aggregation
        assert g.stats.filter_modes == {"date": "vector"}
        c = AStoreEngine.variant(tiny_star, "AIRScan_C").query(sql)
        assert not c.stats.used_array_aggregation
        assert c.stats.filter_modes == {"date": "probe"}


class TestParallel:
    @pytest.mark.parametrize("backend", ["thread", "serial"])
    def test_parallel_matches_serial(self, ssb_air, backend):
        sql = """
            SELECT d_year, c_nation, sum(lo_revenue) AS s, count(*) AS n,
                   min(lo_discount) AS lo, max(lo_discount) AS hi
            FROM lineorder, date, customer
            WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey
              AND d_year >= 1993 GROUP BY d_year, c_nation
            ORDER BY d_year, c_nation
        """
        serial = AStoreEngine(ssb_air).query(sql).rows()
        parallel = AStoreEngine(
            ssb_air, EngineOptions(workers=4, parallel_backend=backend)
        ).query(sql).rows()
        assert parallel == serial

    def test_parallel_hash_agg_merge(self, ssb_air):
        sql = """
            SELECT c_city, s_city, sum(lo_revenue) AS s
            FROM lineorder, customer, supplier
            GROUP BY c_city, s_city ORDER BY c_city, s_city
        """
        serial = AStoreEngine(
            ssb_air, EngineOptions(use_array_aggregation=False)).query(sql)
        parallel = AStoreEngine(
            ssb_air, EngineOptions(use_array_aggregation=False, workers=3)
        ).query(sql)
        assert not serial.stats.used_array_aggregation
        assert parallel.rows() == serial.rows()

    def test_more_workers_than_rows(self, tiny_star):
        r = AStoreEngine(
            tiny_star, EngineOptions(workers=64)
        ).query("SELECT count(*) AS n FROM lineorder")
        assert r.scalar() == 8


class TestProjectionQueries:
    def test_projection_with_dim_columns(self, tiny_star):
        r = AStoreEngine(tiny_star).query("""
            SELECT lo_orderkey, c_nation FROM lineorder, customer
            WHERE lo_custkey = c_custkey AND c_region = 'ASIA'
            ORDER BY lo_orderkey
        """)
        assert r.rows() == [(1, "CHINA"), (2, "JAPAN"), (5, "CHINA"),
                            (6, "JAPAN")]

    def test_projection_limit(self, tiny_star):
        r = AStoreEngine(tiny_star).query(
            "SELECT lo_orderkey FROM lineorder ORDER BY lo_orderkey DESC "
            "LIMIT 3")
        assert [row[0] for row in r.rows()] == [8, 7, 6]


class TestOrdering:
    def test_multi_key_mixed_direction(self, tiny_star):
        r = AStoreEngine(tiny_star).query("""
            SELECT d_year, c_region, sum(lo_revenue) AS s
            FROM lineorder, date, customer
            GROUP BY d_year, c_region ORDER BY d_year ASC, s DESC
        """)
        rows = r.rows()
        years = [row[0] for row in rows]
        assert years == sorted(years)
        for year in set(years):
            revs = [row[2] for row in rows if row[0] == year]
            assert revs == sorted(revs, reverse=True)

    def test_string_desc(self, tiny_star):
        r = AStoreEngine(tiny_star).query(
            "SELECT c_nation, count(*) AS n FROM lineorder, customer "
            "GROUP BY c_nation ORDER BY c_nation DESC")
        names = [row[0] for row in r.rows()]
        assert names == sorted(names, reverse=True)


class TestSnapshots:
    def test_query_at_snapshot(self, tiny_star_mvcc):
        from repro.updates import TransactionManager

        engine = AStoreEngine(tiny_star_mvcc)
        txn = TransactionManager(tiny_star_mvcc)
        before = txn.snapshot()
        txn.insert("lineorder", {
            "lo_orderkey": [9], "lo_custkey": [0], "lo_orderdate": [0],
            "lo_revenue": [1000], "lo_discount": [1], "lo_quantity": [1],
        })
        after = txn.snapshot()
        sql = "SELECT sum(lo_revenue) AS s FROM lineorder"
        assert engine.query(sql, snapshot=before).scalar() == 360
        assert engine.query(sql, snapshot=after).scalar() == 1360

    def test_deleted_rows_invisible_now(self, tiny_star):
        tiny_star.table("lineorder").delete([0, 1])
        r = AStoreEngine(tiny_star).query(
            "SELECT sum(lo_revenue) AS s FROM lineorder")
        assert r.scalar() == 360 - 30


class TestStatsAndExplain:
    def test_stage_timers_populated(self, ssb_air):
        r = AStoreEngine(ssb_air).query("""
            SELECT d_year, sum(lo_revenue) AS s FROM lineorder, date, customer
            WHERE c_region = 'ASIA' GROUP BY d_year
        """)
        s = r.stats
        assert s.total_seconds > 0
        assert s.rows_scanned == ssb_air.table("lineorder").num_rows
        assert 0 < s.rows_selected <= s.rows_scanned
        assert s.leaf_seconds >= 0 and s.scan_seconds > 0

    def test_explain_runs(self, ssb_air):
        text = AStoreEngine(ssb_air).explain(
            "SELECT d_year, count(*) FROM lineorder, date GROUP BY d_year")
        assert "root: lineorder" in text

    def test_result_repr_and_access(self, tiny_star):
        r = AStoreEngine(tiny_star).query(
            "SELECT count(*) AS n FROM lineorder")
        assert "QueryResult" in repr(r)
        assert r.column("n")[0] == 8
        with pytest.raises(ExecutionError):
            r.column("missing")

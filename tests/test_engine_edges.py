"""Edge-case and failure-injection tests for the engine."""

import numpy as np
import pytest

from repro.core import Database
from repro.engine import AStoreEngine, EngineOptions, VARIANTS
from repro.errors import BindError, ExecutionError, PlanError



def empty_star() -> Database:
    """A star schema whose fact table has zero rows."""
    db = Database("empty")
    db.create_table("dim", {"k": [1, 2], "label": ["a", "b"]},
                    dict_threshold=1.0)
    db.create_table("fact", {
        "fk": np.empty(0, dtype=np.int64),
        "value": np.empty(0, dtype=np.int64),
    })
    db.add_reference("fact", "fk", "dim", "k")
    db.airify()
    return db


class TestEmptyInputs:
    @pytest.mark.parametrize("variant", list(VARIANTS))
    def test_empty_fact_scalar(self, variant):
        db = empty_star()
        result = AStoreEngine.variant(db, variant).query(
            "SELECT count(*) AS n, sum(value) AS s FROM fact")
        assert result.to_dicts()[0]["n"] == 0

    @pytest.mark.parametrize("variant", list(VARIANTS))
    def test_empty_fact_grouped(self, variant):
        db = empty_star()
        result = AStoreEngine.variant(db, variant).query(
            "SELECT label, count(*) AS n FROM fact, dim GROUP BY label")
        assert len(result) == 0

    def test_empty_fact_projection(self):
        db = empty_star()
        result = AStoreEngine(db).query("SELECT value FROM fact")
        assert len(result) == 0

    def test_all_rows_deleted(self, tiny_star):
        tiny_star.table("lineorder").delete(range(8))
        result = AStoreEngine(tiny_star).query(
            "SELECT count(*) AS n FROM lineorder")
        assert result.scalar() == 0

    def test_empty_dimension_filter_result(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT d_year, count(*) AS n FROM lineorder, date, customer "
            "WHERE c_region = 'ANTARCTICA' GROUP BY d_year")
        assert len(result) == 0


class TestDegenerateQueries:
    def test_single_row_fact(self):
        db = Database("one")
        db.create_table("dim", {"k": [5], "name": ["only"]},
                        dict_threshold=1.0)
        db.create_table("fact", {"fk": [5], "v": [42]})
        db.add_reference("fact", "fk", "dim", "k")
        db.airify()
        result = AStoreEngine(db).query(
            "SELECT name, sum(v) AS s FROM fact, dim GROUP BY name")
        assert result.rows() == [("only", 42)]

    def test_group_by_constant_cardinality_one(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT d_month, count(*) AS n FROM lineorder, date "
            "GROUP BY d_month")
        assert result.rows() == [("Jan", 8)]

    def test_all_rows_one_group(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT count(*) AS n, min(lo_revenue) AS lo, "
            "max(lo_revenue) AS hi, avg(lo_revenue) AS a FROM lineorder")
        assert result.to_dicts()[0] == {"n": 8, "lo": 10, "hi": 80, "a": 45.0}

    def test_limit_zero(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT lo_orderkey FROM lineorder LIMIT 0")
        assert len(result) == 0

    def test_limit_exceeds_rows(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT d_year, count(*) AS n FROM lineorder, date "
            "GROUP BY d_year LIMIT 100")
        assert len(result) == 2

    def test_predicate_always_true(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT count(*) AS n FROM lineorder WHERE lo_revenue >= 0")
        assert result.scalar() == 8

    def test_or_across_fact_columns(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT count(*) AS n FROM lineorder "
            "WHERE lo_discount = 1 OR lo_quantity >= 40")
        assert result.scalar() == 3  # rows 0, 4 (discount) + row 7 (qty)

    def test_not_predicate(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT count(*) AS n FROM lineorder WHERE NOT lo_discount = 1")
        assert result.scalar() == 6

    def test_arithmetic_in_predicate(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT count(*) AS n FROM lineorder "
            "WHERE lo_revenue + lo_discount > 52")
        # revenues 10..80 with discounts 1..4; rev+disc > 52 -> rows 5..7
        assert result.scalar() == 3

    def test_division_measure(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT sum(lo_revenue / lo_quantity) AS ratio FROM lineorder")
        expected = sum(r / q for r, q in zip(
            [10, 20, 30, 40, 50, 60, 70, 80], [5, 10, 15, 20, 25, 30, 35, 40]))
        assert result.scalar() == pytest.approx(expected)


class TestConfigurationEdges:
    def test_tiny_chunk_rows_row_scan(self, tiny_star):
        engine = AStoreEngine(
            tiny_star, EngineOptions(scan="row", chunk_rows=2,
                                     use_array_aggregation=False))
        result = engine.query(
            "SELECT d_year, sum(lo_revenue) AS s FROM lineorder, date "
            "GROUP BY d_year ORDER BY d_year")
        assert result.rows() == [(1997, 170), (1998, 190)]

    def test_forced_array_agg_on_fused_axes(self, tiny_star):
        engine = AStoreEngine(
            tiny_star, EngineOptions(use_array_aggregation=True))
        result = engine.query(
            "SELECT d_year, d_month, count(*) AS n FROM lineorder, date "
            "GROUP BY d_year, d_month ORDER BY d_year")
        assert result.rows() == [(1997, "Jan", 5), (1998, "Jan", 3)]

    def test_snapshot_with_parallel_workers(self, tiny_star_mvcc):
        from repro.updates import TransactionManager

        txn = TransactionManager(tiny_star_mvcc)
        before = txn.snapshot()
        txn.delete("lineorder", [0, 1, 2, 3])
        engine = AStoreEngine(tiny_star_mvcc, EngineOptions(workers=3))
        sql = "SELECT sum(lo_revenue) AS s FROM lineorder"
        assert engine.query(sql, snapshot=before).scalar() == 360
        assert engine.query(sql, snapshot=txn.snapshot()).scalar() == 260

    def test_executing_same_plan_twice(self, tiny_star):
        engine = AStoreEngine(tiny_star)
        physical = engine.plan("SELECT count(*) AS n FROM lineorder")
        first = engine.execute(physical).scalar()
        second = engine.execute(physical).scalar()
        assert first == second == 8

    def test_plan_survives_data_growth(self, tiny_star):
        """A cached plan executed after inserts sees the new rows."""
        engine = AStoreEngine(tiny_star)
        physical = engine.plan("SELECT count(*) AS n FROM lineorder")
        assert engine.execute(physical).scalar() == 8
        tiny_star.table("lineorder").insert({
            "lo_orderkey": [9], "lo_custkey": [0], "lo_orderdate": [0],
            "lo_revenue": [5], "lo_discount": [1], "lo_quantity": [1]})
        assert engine.execute(physical).scalar() == 9


class TestFailureInjection:
    def test_query_against_unairified_db_fails_cleanly(self):
        db = Database("raw")
        db.create_table("dim", {"k": [1], "v": [10]})
        db.create_table("fact", {"fk": [1], "m": [5]})
        db.add_reference("fact", "fk", "dim", "k")  # no airify()
        with pytest.raises(ExecutionError):
            AStoreEngine(db).query(
                "SELECT v, sum(m) AS s FROM fact, dim GROUP BY v")

    def test_group_by_unreachable_table(self, tiny_star):
        with pytest.raises((BindError, PlanError, ExecutionError)):
            AStoreEngine(tiny_star).query(
                "SELECT s_nation, count(*) FROM lineorder GROUP BY s_nation")

    def test_aggregate_of_string_column_fails_cleanly(self, tiny_star):
        with pytest.raises(Exception):
            AStoreEngine(tiny_star).query(
                "SELECT sum(c_nation) AS s FROM lineorder, customer")

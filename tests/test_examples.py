"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "revenue by product class and city" in out
        assert "array aggregation: True" in out

    def test_ssb_analytics_small_scale(self):
        out = run_example("ssb_analytics.py", "0.002")
        assert "Q4.3" in out and "AVG" in out
        assert "engines disagree" not in out

    def test_snowflake_tpch_small_scale(self):
        out = run_example("snowflake_tpch.py", "0.002")
        assert "lineitem -> orders -> customer -> nation -> region" in out
        assert "revenue by region" in out

    def test_realtime_updates(self):
        out = run_example("realtime_updates.py")
        assert "analyst snapshot" in out
        assert "consolidation" in out

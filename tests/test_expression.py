"""Tests for the vectorized expression evaluator (incl. the dictionary
predicate trick) and the providers over the virtual universal table."""

import numpy as np
import pytest

from repro.engine import (
    dimension_provider,
    evaluate_measure,
    evaluate_predicate,
    like_to_regex,
    universal_provider,
)
from repro.engine.slice import DictSlice
from repro.errors import ExecutionError
from repro.plan import bind
from repro.plan.expressions import (
    BoundAnd,
    BoundArith,
    BoundBetween,
    BoundColumn,
    BoundCompare,
    BoundIn,
    BoundLike,
    BoundLiteral,
    BoundNot,
    BoundOr,
)

C = BoundColumn
L = BoundLiteral


class TestProviders:
    def test_root_column_direct(self, tiny_star):
        p = universal_provider(tiny_star, "lineorder",
                               bind("SELECT count(*) FROM lineorder, date",
                                    tiny_star).paths)
        sl = p.fetch("lineorder", "lo_revenue")
        assert sl.values.tolist() == [10, 20, 30, 40, 50, 60, 70, 80]

    def test_dim_column_through_air(self, tiny_star):
        paths = bind("SELECT count(*) FROM lineorder, date",
                     tiny_star).paths
        p = universal_provider(tiny_star, "lineorder", paths,
                               np.array([0, 4]))
        sl = p.fetch("date", "d_year")
        assert sl.values.tolist() == [1997, 1998]

    def test_chain_gather_snowflake(self, tiny_snowflake):
        paths = bind(
            "SELECT count(*) FROM lineitem, orders, customer, nation, region",
            tiny_snowflake).paths
        p = universal_provider(tiny_snowflake, "lineitem", paths)
        # lineitem rows -> orders(0,0,1,2,3,3) -> cust(7,7,8,9,7,7)
        # -> nation(CHINA,CHINA,FRANCE,JAPAN,CHINA,CHINA)
        sl = p.fetch("nation", "n_name")
        assert list(sl.decode()) == [
            "CHINA", "CHINA", "FRANCE", "JAPAN", "CHINA", "CHINA"]
        region = p.fetch("region", "r_name")
        assert list(region.decode()) == [
            "ASIA", "ASIA", "EUROPE", "ASIA", "ASIA", "ASIA"]

    def test_positions_cached_across_columns(self, tiny_star):
        paths = bind("SELECT count(*) FROM lineorder, customer",
                     tiny_star).paths
        p = universal_provider(tiny_star, "lineorder", paths, np.array([0]))
        p.fetch("customer", "c_region")
        assert "customer" in p._cache

    def test_dict_columns_stay_encoded(self, tiny_star):
        paths = bind("SELECT count(*) FROM lineorder, customer",
                     tiny_star).paths
        p = universal_provider(tiny_star, "lineorder", paths)
        sl = p.fetch("customer", "c_region")
        assert isinstance(sl, DictSlice)

    def test_unreachable_table_rejected(self, tiny_star):
        p = universal_provider(tiny_star, "lineorder", ())
        with pytest.raises(ExecutionError):
            p.positions_for("customer")

    def test_rebase_composes(self, tiny_star):
        paths = bind("SELECT count(*) FROM lineorder, date", tiny_star).paths
        p = universal_provider(tiny_star, "lineorder", paths,
                               np.array([4, 5, 6]))
        sub = p.rebase(np.array([2]))  # -> base row 6
        assert sub.fetch("lineorder", "lo_revenue").values.tolist() == [70]


class TestPredicates:
    def _dim(self, db, table):
        return dimension_provider(db, table, ())

    def test_numeric_compare(self, tiny_star):
        p = self._dim(tiny_star, "lineorder")
        mask = evaluate_predicate(
            BoundCompare("<", C("lineorder", "lo_revenue"), L(35)), p)
        assert mask.tolist() == [True, True, True] + [False] * 5

    def test_dict_equality_uses_codes(self, tiny_star):
        p = self._dim(tiny_star, "customer")
        mask = evaluate_predicate(
            BoundCompare("=", C("customer", "c_region"), L("ASIA")), p)
        assert mask.tolist() == [True, True, False, False]

    def test_dict_equality_unknown_value(self, tiny_star):
        p = self._dim(tiny_star, "customer")
        mask = evaluate_predicate(
            BoundCompare("=", C("customer", "c_region"), L("NOWHERE")), p)
        assert not mask.any()

    def test_dict_range(self, tiny_star):
        p = self._dim(tiny_star, "customer")
        mask = evaluate_predicate(
            BoundBetween(C("customer", "c_region"), L("AMERICA"), L("ASIA")),
            p)
        # AMERICA <= x <= ASIA lexicographically
        assert mask.tolist() == [True, True, False, True]

    def test_in_list_on_dict(self, tiny_star):
        p = self._dim(tiny_star, "customer")
        mask = evaluate_predicate(
            BoundIn(C("customer", "c_nation"), ("CHINA", "BRAZIL")), p)
        assert mask.tolist() == [True, False, False, True]

    def test_negated_in(self, tiny_star):
        p = self._dim(tiny_star, "customer")
        mask = evaluate_predicate(
            BoundIn(C("customer", "c_nation"), ("CHINA",), negated=True), p)
        assert mask.tolist() == [False, True, True, True]

    def test_like(self, tiny_star):
        p = self._dim(tiny_star, "customer")
        mask = evaluate_predicate(
            BoundLike(C("customer", "c_nation"), "%AN%"), p)
        # JAPAN, FRANCE contain AN
        assert mask.tolist() == [False, True, True, False]

    def test_and_or_not(self, tiny_star):
        p = self._dim(tiny_star, "lineorder")
        expr = BoundAnd((
            BoundCompare(">=", C("lineorder", "lo_revenue"), L(30)),
            BoundOr((
                BoundCompare("=", C("lineorder", "lo_discount"), L(1)),
                BoundNot(BoundCompare("<", C("lineorder", "lo_quantity"),
                                      L(40))),
            )),
        ))
        mask = evaluate_predicate(expr, p)
        # rows with rev>=30: idx 2..7; discount==1 at idx 4; quantity>=40 idx 7
        assert mask.tolist() == [False, False, False, False, True,
                                 False, False, True]

    def test_between_numeric(self, tiny_star):
        p = self._dim(tiny_star, "lineorder")
        mask = evaluate_predicate(
            BoundBetween(C("lineorder", "lo_discount"), L(2), L(3)), p)
        assert mask.sum() == 4

    def test_non_predicate_rejected(self, tiny_star):
        p = self._dim(tiny_star, "lineorder")
        with pytest.raises(ExecutionError):
            evaluate_predicate(C("lineorder", "lo_revenue"), p)


class TestMeasures:
    def test_arithmetic(self, tiny_star):
        p = dimension_provider(tiny_star, "lineorder", ())
        expr = BoundArith("*", C("lineorder", "lo_revenue"),
                          C("lineorder", "lo_discount"))
        values = evaluate_measure(expr, p)
        assert values.tolist() == [10, 40, 90, 160, 50, 120, 210, 320]

    def test_paper_q3_shape(self, tiny_snowflake):
        p = dimension_provider(tiny_snowflake, "lineitem", ())
        expr = BoundArith(
            "*", C("lineitem", "l_extendedprice"),
            BoundArith("-", L(1), C("lineitem", "l_discount")))
        values = evaluate_measure(expr, p)
        assert values.tolist() == pytest.approx(
            [10.0, 10.0, 27.0, 40.0, 40.0, 30.0])

    def test_predicate_as_measure_rejected(self, tiny_star):
        p = dimension_provider(tiny_star, "lineorder", ())
        with pytest.raises(ExecutionError):
            evaluate_measure(
                BoundCompare("=", C("lineorder", "lo_discount"), L(1)), p)


class TestLikeRegex:
    @pytest.mark.parametrize("pattern,value,expected", [
        ("MFGR#12%", "MFGR#1201", True),
        ("MFGR#12%", "MFGR#2201", False),
        ("%KI_", "UNITED KI1", True),
        ("%KI_", "UNITED KINGDOM", False),
        ("a.b", "a.b", True),
        ("a.b", "axb", False),  # '.' must be literal
    ])
    def test_translation(self, pattern, value, expected):
        assert bool(like_to_regex(pattern).match(value)) is expected

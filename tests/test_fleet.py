"""The multi-process serving fleet: one socket, N workers, one shared
query store.

Contracts, each over *real* spawned server processes:

* **differential** — every worker in a 2-worker arena fleet answers all
  13 SSB queries byte-identically to a serial no-cache ground truth
  (JSON round-tripped, i.e. exactly what a client sees), and at least
  one answer crossed the shared store instead of being recomputed;
* **drain** — a SHUTDOWN admin line fans out to every worker and the
  supervisor exits 0 with no shared-memory segments left behind;
* **invalidation** — racing mutations against a copy-mode fleet never
  leave a worker serving a stale result once its copy has mutated (the
  stamp broadcast kills cross-process cache reuse of old answers);
* **supervision** — a SIGKILLed worker is respawned into the same
  fleet, and the fleet still drains cleanly afterwards.

Everything here is skipped on platforms without POSIX record locks.
"""

import asyncio
import json
import os
import signal
import threading
import time

import pytest

from repro.core.shmcache import list_segments, store_available
from repro.engine.executor import AStoreEngine, EngineOptions
from repro.engine.fleet import ServeFleet
from repro.io import save_database
from repro.workloads import SSB_QUERIES

from .conftest import build_tiny_star

pytestmark = pytest.mark.skipif(
    not store_available(),
    reason="the serving fleet needs POSIX shared memory + record locks")

SQL_YEAR = ("SELECT d_year, sum(lo_revenue) AS revenue "
            "FROM lineorder, date GROUP BY d_year")


class FleetHarness:
    """Start a fleet, run its supervisor on a thread, tear down safely."""

    def __init__(self, **kwargs):
        kwargs.setdefault("options", EngineOptions(
            parallel_backend="serial", cache_results=True))
        kwargs.setdefault("workers", 2)
        self.fleet = ServeFleet(port=0, **kwargs)
        self.exit_code = None

    def __enter__(self):
        self.host, self.port = self.fleet.start()
        self._waiter = threading.Thread(target=self._wait, daemon=True)
        self._waiter.start()
        return self

    def _wait(self):
        self.exit_code = self.fleet.wait()

    def __exit__(self, *exc):
        if self._waiter.is_alive():
            self.fleet.request_stop()
        self._waiter.join(timeout=120)
        self.fleet.close()

    async def rpc(self, reader, writer, line):
        writer.write((line + "\n").encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.readline(), timeout=60)
        assert raw, "fleet closed the connection mid-request"
        return json.loads(raw)

    async def connect(self):
        return await asyncio.open_connection(self.host, self.port)

    async def connect_to_each_worker(self, expect, attempts=120):
        """``{pid: (reader, writer)}`` covering *expect* distinct pids.

        SO_REUSEPORT balances per *connection*, so we redial until every
        worker has answered a STATS probe (or attempts run out).
        """
        conns = {}
        try:
            for _ in range(attempts):
                reader, writer = await self.connect()
                pid = (await self.rpc(reader, writer, "STATS"))["pid"]
                if pid in conns:
                    writer.close()
                else:
                    conns[pid] = (reader, writer)
                if len(conns) >= expect:
                    return conns
        except BaseException:
            for _, writer in conns.values():
                writer.close()
            raise
        for _, writer in conns.values():
            writer.close()
        raise AssertionError(
            f"only reached {sorted(conns)} of {expect} workers")

    async def shutdown(self):
        reader, writer = await self.connect()
        response = await self.rpc(reader, writer, "SHUTDOWN")
        writer.close()
        return response


def serial_rows(db, sql):
    """Ground truth as a client would see it: serial, uncached, JSON."""
    with AStoreEngine(db, EngineOptions(parallel_backend="serial",
                                        use_cache=False)) as probe:
        return json.loads(json.dumps(probe.query(sql).rows()))


class TestArenaFleet:
    def test_both_workers_match_serial_ground_truth(self, ssb_air):
        reference = {qid: serial_rows(ssb_air, sql)
                     for qid, sql in SSB_QUERIES.items()}

        async def check():
            conns = await harness.connect_to_each_worker(expect=2)
            shared_hits = 0
            for pid, (reader, writer) in conns.items():
                for qid, sql in SSB_QUERIES.items():
                    response = await harness.rpc(
                        reader, writer, json.dumps({"sql": sql}))
                    assert response["rows"] == reference[qid], (pid, qid)
                stats = await harness.rpc(reader, writer, "STATS")
                shared_hits += sum(
                    tier.get("shared_hits", 0)
                    for tier in stats["cache"].values())
                writer.close()
            return sorted(conns), shared_hits

        with FleetHarness(db=ssb_air, workers=2) as harness:
            pids, shared_hits = asyncio.run(check())
            assert len(pids) == 2
            # the second worker served from the store, not a recompute
            assert shared_hits >= 1
            asyncio.run(harness.shutdown())
            harness._waiter.join(timeout=120)
            assert harness.exit_code == 0
        assert not list_segments()

    def test_shutdown_reaps_everything(self):
        db = build_tiny_star()
        with FleetHarness(db=db, workers=2) as harness:
            async def one_query_then_shutdown():
                reader, writer = await harness.connect()
                response = await harness.rpc(
                    reader, writer, json.dumps({"sql": SQL_YEAR}))
                assert response["rows"]
                writer.close()
                return await harness.shutdown()

            assert asyncio.run(one_query_then_shutdown())["shutdown"]
            harness._waiter.join(timeout=120)
            assert harness.exit_code == 0
            assert all(not worker.process.is_alive()
                       for worker in harness.fleet._workers.values())
        assert not list_segments()

    def test_handoff_fallback_serves(self):
        # force the parent accept-loop + fd-handoff path (the fallback
        # for platforms without SO_REUSEPORT) and prove it still serves
        db = build_tiny_star()
        expected = serial_rows(db, SQL_YEAR)

        async def check():
            reader, writer = await harness.connect()
            response = await harness.rpc(
                reader, writer, json.dumps({"sql": SQL_YEAR}))
            assert response["rows"] == expected
            writer.close()
            return await harness.shutdown()

        with FleetHarness(db=db, workers=2, force_handoff=True) as harness:
            assert asyncio.run(check())["shutdown"]
            harness._waiter.join(timeout=120)
            assert harness.exit_code == 0


class TestCopyModeInvalidation:
    def test_racing_mutations_never_serve_stale(self, tmp_path):
        """Mutate both workers' private copies while queries race; once a
        worker acknowledges its mutation, its answers must reflect it."""
        db = build_tiny_star()
        path = str(tmp_path / "tiny.npz")
        save_database(db, path)
        post_db = build_tiny_star()
        post_db.table("lineorder").update([0], {"lo_revenue": [10_000]})
        post_rows = serial_rows(post_db, SQL_YEAR)
        pre_rows = serial_rows(db, SQL_YEAR)
        update = json.dumps({"update": {
            "table": "lineorder", "positions": [0],
            "values": {"lo_revenue": [10_000]}}})

        async def check():
            conns = await harness.connect_to_each_worker(expect=2)
            # warm both workers' caches (and the shared store) pre-mutation
            for reader, writer in conns.values():
                response = await harness.rpc(
                    reader, writer, json.dumps({"sql": SQL_YEAR}))
                assert response["rows"] == pre_rows

            async def mutate(pid):
                reader, writer = conns[pid]
                response = await harness.rpc(reader, writer, update)
                assert response["ok"], response
                # from this worker's view the mutation is applied: it
                # must never serve the stale cached answer again
                response = await harness.rpc(
                    reader, writer, json.dumps({"sql": SQL_YEAR}))
                assert response["rows"] == post_rows, pid

            async def query_loop(stop):
                # a dedicated connection (the kernel picks the worker)
                reader, writer = await harness.connect()
                try:
                    while not stop.is_set():
                        response = await harness.rpc(
                            reader, writer, json.dumps({"sql": SQL_YEAR}))
                        # racing reads see exactly pre- or post-state,
                        # never a torn or cross-process-stale mix
                        assert response["rows"] in (pre_rows, post_rows)
                finally:
                    writer.close()

            pids = list(conns)
            stop = asyncio.Event()
            racer = asyncio.create_task(query_loop(stop))
            await mutate(pids[1])
            await mutate(pids[0])
            stop.set()
            await racer
            # both copies mutated: both workers must answer post-state
            for pid, (reader, writer) in conns.items():
                response = await harness.rpc(
                    reader, writer, json.dumps({"sql": SQL_YEAR}))
                assert response["rows"] == post_rows, pid
                writer.close()

        with FleetHarness(database_path=path, data_mode="copy",
                          workers=2) as harness:
            asyncio.run(check())
            asyncio.run(harness.shutdown())
            harness._waiter.join(timeout=120)
            assert harness.exit_code == 0
        assert not list_segments()


class TestSupervision:
    def test_killed_worker_is_respawned(self):
        db = build_tiny_star()

        async def victim_pid():
            reader, writer = await harness.connect()
            pid = (await harness.rpc(reader, writer, "STATS"))["pid"]
            writer.close()
            return pid

        async def wait_for_new_pid(dead, deadline=60.0):
            t0 = time.monotonic()
            while time.monotonic() - t0 < deadline:
                try:
                    reader, writer = await harness.connect()
                    pid = (await harness.rpc(reader, writer, "STATS"))["pid"]
                    writer.close()
                    if pid not in dead:
                        return pid
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    await asyncio.sleep(0.1)
            raise AssertionError("no respawned worker answered in time")

        with FleetHarness(db=db, workers=2) as harness:
            starting = {worker.process.pid
                        for worker in harness.fleet._workers.values()}
            victim = asyncio.run(victim_pid())
            assert victim in starting
            os.kill(victim, signal.SIGKILL)
            # the survivor also answers probes: wait for a pid outside
            # the *whole* starting set, which only a respawn can produce
            fresh = asyncio.run(wait_for_new_pid(starting))
            assert fresh not in starting
            assert harness.fleet.respawns >= 1
            asyncio.run(harness.shutdown())
            harness._waiter.join(timeout=120)
            assert harness.exit_code == 0
        assert not list_segments()

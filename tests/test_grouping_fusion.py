"""Tests for the functional-dependency fusion of group axes.

Group keys reaching the fact table through the same first-level dimension
share one axis over their *observed* value combinations, shrinking the
aggregation array (the paper's dimensionality-reduction remark in
Section 4.3) without changing any result.
"""


from repro.engine import AStoreEngine, build_axes
from repro.engine.grouping import total_groups
from repro.plan import bind


class TestAxisFusion:
    def test_same_dim_keys_fused(self, ssb_air):
        logical = bind(
            "SELECT d_year, d_yearmonth, count(*) AS n FROM lineorder, date "
            "GROUP BY d_year, d_yearmonth", ssb_air)
        axes = build_axes(ssb_air, logical)
        assert len(axes) == 1  # fused into one axis
        # observed (year, yearmonth) pairs = 84 months, far below 7 * 84
        assert axes[0].card == 84
        assert set(axes[0].columns) == {"d_year", "d_yearmonth"}

    def test_fd_consistency_of_decoded_pairs(self, ssb_air):
        logical = bind(
            "SELECT d_year, d_yearmonth, count(*) AS n FROM lineorder, date "
            "GROUP BY d_year, d_yearmonth", ssb_air)
        axes = build_axes(ssb_air, logical)
        years = axes[0].columns["d_year"]
        months = axes[0].columns["d_yearmonth"]
        for year, month in zip(years, months):
            assert str(year) in str(month)  # 'Mar1992' contains '1992'

    def test_snowflake_chain_keys_fused(self, tpch_air):
        logical = bind(
            "SELECT n_name, r_name, count(*) AS n "
            "FROM lineitem, orders, customer, nation, region "
            "GROUP BY n_name, r_name", tpch_air)
        axes = build_axes(tpch_air, logical)
        # n_name and r_name both fold onto orders -> one axis of 25 pairs
        assert len(axes) == 1
        assert axes[0].card == 25

    def test_different_dims_not_fused(self, ssb_air):
        logical = bind(
            "SELECT c_nation, s_nation, count(*) AS n "
            "FROM lineorder, customer, supplier "
            "GROUP BY c_nation, s_nation", ssb_air)
        axes = build_axes(ssb_air, logical)
        assert len(axes) == 2

    def test_fact_keys_not_fused(self, ssb_air):
        logical = bind(
            "SELECT lo_discount, lo_tax, count(*) AS n FROM lineorder "
            "GROUP BY lo_discount, lo_tax", ssb_air)
        axes = build_axes(ssb_air, logical)
        assert len(axes) == 2

    def test_fused_results_match_hash_agg(self, ssb_air):
        sql = ("SELECT d_year, d_yearmonth, sum(lo_revenue) AS s "
               "FROM lineorder, date WHERE lo_discount <= 3 "
               "GROUP BY d_year, d_yearmonth ORDER BY d_year, d_yearmonth")
        array_rows = AStoreEngine.variant(ssb_air, "AIRScan_C_P_G").query(
            sql).rows()
        hash_rows = AStoreEngine.variant(ssb_air, "AIRScan_C_P").query(
            sql).rows()
        row_rows = AStoreEngine.variant(ssb_air, "AIRScan_R").query(
            sql).rows()
        assert array_rows == hash_rows == row_rows

    def test_fusion_shrinks_measure_index_domain(self, ssb_air):
        fused = bind(
            "SELECT d_year, d_yearmonth, count(*) AS n FROM lineorder, date "
            "GROUP BY d_year, d_yearmonth", ssb_air)
        axes = build_axes(ssb_air, fused)
        assert total_groups([a.card for a in axes]) == 84

    def test_three_keys_same_dim(self, ssb_air):
        sql = ("SELECT d_year, d_month, d_yearmonth, count(*) AS n "
               "FROM lineorder, date GROUP BY d_year, d_month, d_yearmonth "
               "ORDER BY d_yearmonth")
        result = AStoreEngine(ssb_air).query(sql)
        assert len(result) == 84
        # every (year, month) matches its yearmonth label
        for row in result.to_dicts():
            assert row["d_yearmonth"] == f"{row['d_month']}{row['d_year']}"

"""Tests for persistence (npz archives) and CSV import/export."""

import numpy as np
import pytest

from repro import AStoreEngine
from repro.core import AIRColumn, DictColumn, Database, StringColumn
from repro.errors import StorageError
from repro.io import dump_csv, load_csv, load_database, save_database

from .conftest import build_tiny_star


class TestPersistRoundtrip:
    def test_roundtrip_preserves_rows(self, tmp_path):
        db = build_tiny_star()
        save_database(db, tmp_path / "tiny.npz")
        loaded = load_database(tmp_path / "tiny.npz")
        assert set(loaded.tables) == set(db.tables)
        for name in db.tables:
            orig, back = db.table(name), loaded.table(name)
            assert back.num_rows == orig.num_rows
            for col in orig.column_names:
                assert list(back[col].values()) == list(orig[col].values())

    def test_roundtrip_preserves_layouts(self, tmp_path):
        db = build_tiny_star()
        save_database(db, tmp_path / "tiny.npz")
        loaded = load_database(tmp_path / "tiny.npz")
        lo = loaded.table("lineorder")
        assert isinstance(lo["lo_custkey"], AIRColumn)
        assert lo["lo_custkey"].referenced_table == "customer"
        assert isinstance(loaded.table("customer")["c_region"], DictColumn)

    def test_roundtrip_preserves_references(self, tmp_path):
        db = build_tiny_star()
        save_database(db, tmp_path / "tiny.npz")
        loaded = load_database(tmp_path / "tiny.npz")
        assert len(loaded.references) == 2
        # and the engine runs on the loaded database without airify()
        total = AStoreEngine(loaded).query(
            "SELECT sum(lo_revenue) AS s FROM lineorder, customer "
            "WHERE lo_custkey = c_custkey AND c_region = 'ASIA'").scalar()
        assert total == 140

    def test_roundtrip_preserves_deletes_and_free_slots(self, tmp_path):
        db = build_tiny_star()
        db.table("lineorder").delete([2, 5])
        save_database(db, tmp_path / "tiny.npz")
        loaded = load_database(tmp_path / "tiny.npz")
        lo = loaded.table("lineorder")
        assert lo.num_live == 6
        # the freed slots survive: reuse happens on insert
        pos = lo.insert({name: [0] for name in lo.column_names})
        assert pos.tolist() == [2]

    def test_roundtrip_preserves_mvcc(self, tmp_path):
        db = build_tiny_star(mvcc=True)
        db.table("lineorder").delete([0], version=7)
        save_database(db, tmp_path / "tiny.npz")
        loaded = load_database(tmp_path / "tiny.npz")
        assert loaded.table("lineorder").live_mask(snapshot=5)[0]
        assert not loaded.table("lineorder").live_mask(snapshot=9)[0]

    def test_roundtrip_ssb_query_equivalence(self, tmp_path, ssb_air):
        save_database(ssb_air, tmp_path / "ssb.npz")
        loaded = load_database(tmp_path / "ssb.npz")
        sql = ("SELECT d_year, sum(lo_revenue) AS s FROM lineorder, date "
               "GROUP BY d_year ORDER BY d_year")
        assert (AStoreEngine(loaded).query(sql).rows()
                == AStoreEngine(ssb_air).query(sql).rows())

    def test_string_heap_columns(self, tmp_path):
        db = Database("s")
        db.create_table("t", {"name": [f"n{i}" for i in range(50)]})
        assert isinstance(db.table("t")["name"], StringColumn)
        save_database(db, tmp_path / "s.npz")
        loaded = load_database(tmp_path / "s.npz")
        assert loaded.table("t")["name"].get(7) == "n7"

    def test_version_check(self, tmp_path):
        db = build_tiny_star()
        save_database(db, tmp_path / "t.npz")
        import json

        with np.load(tmp_path / "t.npz") as archive:
            arrays = {k: archive[k] for k in archive.files}
        manifest = json.loads(bytes(arrays["$manifest"]).decode())
        manifest["version"] = 99
        arrays["$manifest"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8)
        with open(tmp_path / "bad.npz", "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(StorageError):
            load_database(tmp_path / "bad.npz")


class TestCSV:
    def test_load_with_header(self, tmp_path):
        path = tmp_path / "dim.csv"
        path.write_text("k|name|price\n1|alpha|10\n2|beta|2.5\n")
        db = Database("csv")
        table = load_csv(db, "dim", path)
        assert table.num_rows == 2
        assert table["k"].values().tolist() == [1, 2]
        assert table["price"].values().tolist() == [10.0, 2.5]
        assert table["name"].get(1) == "beta"

    def test_load_without_header(self, tmp_path):
        path = tmp_path / "raw.tbl"
        path.write_text("1|x|\n2|y|\n")  # dbgen trailing delimiter
        db = Database("csv")
        table = load_csv(db, "raw", path, columns=["k", "v"],
                         has_header=False)
        assert table.num_rows == 2
        assert table["v"].values().tolist() == ["x", "y"]

    def test_load_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(StorageError):
            load_csv(Database("x"), "t", path)

    def test_ragged_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a|b\n1|2\n3\n")
        with pytest.raises(StorageError):
            load_csv(Database("x"), "t", path)

    def test_dump_table_skips_deleted(self, tmp_path):
        db = build_tiny_star()
        db.table("customer").delete([1])
        n = dump_csv(db.table("customer"), tmp_path / "c.csv")
        assert n == 3
        text = (tmp_path / "c.csv").read_text()
        assert "JAPAN" not in text and "CHINA" in text

    def test_dump_query_result(self, tmp_path, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT d_year, sum(lo_revenue) AS s FROM lineorder, date "
            "GROUP BY d_year ORDER BY d_year")
        n = dump_csv(result, tmp_path / "out.csv")
        assert n == 2
        lines = (tmp_path / "out.csv").read_text().strip().splitlines()
        assert lines[0] == "d_year|s"

    def test_csv_roundtrip_through_engine(self, tmp_path):
        db = build_tiny_star()
        dump_csv(db.table("lineorder"), tmp_path / "lo.csv")
        db2 = Database("again")
        load_csv(db2, "lineorder", tmp_path / "lo.csv")
        total = AStoreEngine(db2).query(
            "SELECT sum(lo_revenue) AS s FROM lineorder").scalar()
        assert total == 360

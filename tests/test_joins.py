"""Unit + property tests for the join algorithms and the hash table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.joins import (
    IntHashTable,
    air_join,
    npo_hash_join,
    pro_hash_join,
    sort_merge_join,
)


def reference_join(fact_keys, dim_keys):
    """Oracle: dict-based join."""
    lookup = {int(k): i for i, k in enumerate(dim_keys)}
    return np.array([lookup.get(int(k), -1) for k in fact_keys], dtype=np.int64)


class TestIntHashTable:
    def test_build_and_probe(self):
        keys = np.array([5, 17, 3, 99])
        table = IntHashTable(keys)
        assert table.probe(np.array([3, 5, 42])).tolist() == [2, 0, -1]

    def test_empty_table(self):
        table = IntHashTable(np.array([], dtype=np.int64))
        assert table.probe(np.array([1, 2])).tolist() == [-1, -1]

    def test_custom_values(self):
        table = IntHashTable(np.array([7, 8]), values=np.array([70, 80]))
        assert table.probe(np.array([8, 7])).tolist() == [80, 70]

    def test_negative_keys_rejected(self):
        with pytest.raises(ExecutionError):
            IntHashTable(np.array([-1]))

    def test_duplicate_keys_probe_one_match(self):
        table = IntHashTable(np.array([4, 4, 4, 4]))
        assert int(table.probe(np.array([4]))[0]) in (0, 1, 2, 3)

    def test_many_collisions(self):
        # keys all congruent modulo a power of two stress linear probing
        keys = np.arange(0, 1 << 14, 1 << 6, dtype=np.int64)
        table = IntHashTable(keys)
        assert np.array_equal(table.probe(keys), np.arange(len(keys)))

    def test_len(self):
        assert len(IntHashTable(np.arange(100))) == 100

    @given(st.sets(st.integers(min_value=0, max_value=10**9),
                   min_size=0, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_probe_matches_dict(self, key_set):
        keys = np.array(sorted(key_set), dtype=np.int64)
        table = IntHashTable(keys)
        probes = np.concatenate([keys, keys + 1]) if len(keys) else np.array([0])
        expected = reference_join(probes, keys)
        assert np.array_equal(table.probe(probes), expected)


class TestAirJoin:
    def test_positions_pass_through(self):
        refs = np.array([0, 2, 1])
        assert air_join(refs, 3).dim_positions.tolist() == [0, 2, 1]

    def test_validation_marks_out_of_range(self):
        refs = np.array([0, 5, -1])
        assert air_join(refs, 3).dim_positions.tolist() == [0, -1, -1]

    def test_novalidate_is_identity(self):
        refs = np.array([0, 5])
        assert air_join(refs, 3, validate=False).dim_positions.tolist() == [0, 5]

    def test_count(self):
        assert air_join(np.array([0, 1, 9]), 5).count() == 2


@pytest.mark.parametrize("join", [npo_hash_join, pro_hash_join, sort_merge_join],
                         ids=["NPO", "PRO", "SORT_MERGE"])
class TestKeyJoins:
    def test_basic(self, join):
        dim = np.array([100, 200, 300])
        fact = np.array([300, 100, 100, 999])
        assert join(fact, dim).dim_positions.tolist() == [2, 0, 0, -1]

    def test_empty_fact(self, join):
        out = join(np.array([], dtype=np.int64), np.array([1, 2]))
        assert len(out.dim_positions) == 0

    def test_empty_dim(self, join):
        out = join(np.array([5, 6]), np.array([], dtype=np.int64))
        assert out.dim_positions.tolist() == [-1, -1]

    def test_large_random(self, join):
        rng = np.random.default_rng(0)
        dim = rng.permutation(50_000)[:10_000].astype(np.int64)
        fact = rng.integers(0, 60_000, size=5_000).astype(np.int64)
        expected = reference_join(fact, dim)
        assert np.array_equal(join(fact, dim).dim_positions, expected)

    @given(
        dim=st.sets(st.integers(min_value=0, max_value=5000),
                    min_size=1, max_size=200),
        fact=st.lists(st.integers(min_value=0, max_value=5000),
                      min_size=0, max_size=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_oracle(self, join, dim, fact):
        dim = np.array(sorted(dim), dtype=np.int64)
        fact = np.array(fact, dtype=np.int64)
        expected = reference_join(fact, dim)
        assert np.array_equal(join(fact, dim).dim_positions, expected)


class TestPRODetails:
    def test_explicit_radix_bits(self):
        dim = np.arange(1000, dtype=np.int64)
        fact = np.array([0, 999, 500, 1001])
        out = pro_hash_join(fact, dim, radix_bits=4)
        assert out.dim_positions.tolist() == [0, 999, 500, -1]

    def test_zero_bits_degenerates_to_npo(self):
        dim = np.array([3, 8, 1])
        fact = np.array([8, 8, 2])
        out = pro_hash_join(fact, dim, radix_bits=0)
        assert out.dim_positions.tolist() == [1, 1, -1]


class TestSortMergeDetails:
    def test_duplicate_dim_keys_rejected(self):
        with pytest.raises(ExecutionError):
            sort_merge_join(np.array([1]), np.array([2, 2]))


class TestAgreementAcrossAlgorithms:
    def test_all_algorithms_agree_on_air_encoded_data(self):
        """When FKs are positions, key-based joins over arange agree with AIR."""
        rng = np.random.default_rng(1)
        dim_size = 2_000
        refs = rng.integers(0, dim_size, size=3_000).astype(np.int64)
        ident = np.arange(dim_size, dtype=np.int64)
        a = air_join(refs, dim_size).dim_positions
        n = npo_hash_join(refs, ident).dim_positions
        p = pro_hash_join(refs, ident).dim_positions
        s = sort_merge_join(refs, ident).dim_positions
        assert np.array_equal(a, n) and np.array_equal(n, p) and np.array_equal(p, s)

"""Self-healing cluster: membership, rejoin, and the overload front door.

Contracts, each pinned with deterministic chaos or an injectable clock:

* **state machine** — alive → suspect → dead on consecutive missed
  heartbeats, dead sticky until re-registration (which bumps the
  incarnation), a clean ``leave`` drops the member without a death;
* **flap** — a ``flap@membership.heartbeat`` rule oscillates a member
  alive ↔ suspect without ever reaching dead;
* **rejoin** — a node SIGKILLed under a membership view is declared
  dead, and after a restart on the same port it re-registers, folds
  into the next scatter wave (``remote_nodes_joined``), and the full
  13-query SSB flight is bit-identical to serial again;
* **catch-up** — a restarted node whose archive copy predates a
  coordinator mutation seeds its stamp lane from the join reply and
  *refuses* shards instead of serving the stale copy;
* **breaker** — per-node circuit: open after ``threshold`` consecutive
  failures, half-open one probe after ``reset_seconds``, closed on
  probe success; membership may vouch for a locally-dead link but the
  breaker still gates its readmission;
* **hedge** — a shard unanswered past ``node_hedge`` races on a second
  live node and either answer is the answer (``hedges``/``hedge_wins``);
* **overload** — past ``max_pending`` in-flight requests (or an armed
  ``coordinator.admit`` fault) the serve layer sheds with a structured
  ``{"overloaded": true}`` error while every accepted request stays
  exact;
* **graceful SIGTERM** — a node finishes its in-flight shard,
  deregisters from the membership view, and exits 0;
* **reaper** (satellite) — an interpreter that exits without closing
  its :class:`LocalNodes` still reaps the node processes via atexit;
* **lane reconnect** (satellite) — a node's stamp lane survives a
  dropped coordinator socket: the counts are node-side state, not
  connection state.
"""

import json
import os
import subprocess
import sys
import textwrap
import threading
import time

import pytest

import repro
from repro.engine.chaos import (
    ChaosController,
    ChaosDrop,
    clear_chaos,
    install_chaos,
    parse_rules,
)
from repro.engine.distributed import (
    CircuitBreaker,
    LocalNodes,
    RemoteShardBackend,
    ShardNode,
    _NodeLink,
)
from repro.engine.executor import AStoreEngine, EngineOptions
from repro.engine.membership import (
    ClusterView,
    MembershipClient,
    MembershipServer,
    announce_join,
    announce_leave,
)
from repro.engine.serve import AsyncEngine, serve_tcp
from repro.engine.sharding import database_stamp
from repro.errors import AStoreError, ChaosSpecError, MembershipError
from repro.io import load_database, save_database
from repro.workloads import SSB_QUERIES

from .conftest import build_tiny_star

pytestmark = pytest.mark.skipif(
    os.name != "posix",
    reason="shard nodes are spawned POSIX processes")

SQL_YEAR = ("SELECT d_year, sum(lo_revenue) AS revenue "
            "FROM lineorder, date GROUP BY d_year")


@pytest.fixture(scope="module")
def ssb_path(tmp_path_factory, ssb_air):
    path = str(tmp_path_factory.mktemp("member") / "ssb.npz")
    save_database(ssb_air, path)
    return path


@pytest.fixture(scope="module")
def ssb_db(ssb_path):
    return load_database(ssb_path)


@pytest.fixture(scope="module")
def ssb_truth(ssb_db):
    with AStoreEngine(ssb_db, EngineOptions(parallel_backend="serial",
                                            use_cache=False)) as serial:
        return {qid: client_rows(serial.query(sql))
                for qid, sql in SSB_QUERIES.items()}


@pytest.fixture(autouse=True)
def _disarm_chaos():
    yield
    clear_chaos()
    os.environ.pop("ASTORE_CHAOS", None)


def client_rows(result):
    """Rows as a client would see them (JSON round-tripped)."""
    return json.loads(json.dumps(
        [[str(value) for value in row] for row in result.rows()]))


def member_engine(db, server, **overrides):
    """An engine whose remote backend reads the membership view instead
    of a static node list."""
    overrides.setdefault("node_timeout", 15.0)
    return AStoreEngine(db, EngineOptions(
        parallel_backend="remote", membership=server.address,
        use_cache=False, **overrides))


def wait_until(predicate, timeout=10.0, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class TestClusterView:
    def test_alive_suspect_dead_transitions_are_pinned(self):
        view = ClusterView(suspect_after=2, dead_after=4)
        view.register("127.0.0.1:7001", pid=41)
        assert view.record_probe("127.0.0.1:7001", ok=False) == "alive"
        assert view.record_probe("127.0.0.1:7001", ok=False) == "suspect"
        assert view.record_probe("127.0.0.1:7001", ok=False) == "suspect"
        assert view.record_probe("127.0.0.1:7001", ok=False) == "dead"
        assert [(old, new) for _, old, new, _ in view.transitions] == [
            ("", "alive"), ("alive", "suspect"), ("suspect", "dead")]
        # generations strictly increase with each transition
        assert [g for *_, g in view.transitions] == [1, 2, 3]

    def test_recovered_probe_resets_the_miss_streak(self):
        view = ClusterView(suspect_after=2, dead_after=4)
        view.register("127.0.0.1:7001")
        view.record_probe("127.0.0.1:7001", ok=False)
        assert view.record_probe("127.0.0.1:7001", ok=True) == "alive"
        # the earlier miss no longer counts toward suspicion
        assert view.record_probe("127.0.0.1:7001", ok=False) == "alive"

    def test_dead_is_sticky_until_reregistration(self):
        view = ClusterView(suspect_after=1, dead_after=2)
        view.register("127.0.0.1:7001")
        view.record_probe("127.0.0.1:7001", ok=False)
        view.record_probe("127.0.0.1:7001", ok=False)
        assert view.states() == {"127.0.0.1:7001": "dead"}
        # a lucky probe does NOT resurrect a dead member
        assert view.record_probe("127.0.0.1:7001", ok=True) == "dead"
        # only a re-registration does, and it bumps the incarnation
        member = view.register("127.0.0.1:7001")
        assert member.state == "alive" and member.incarnation == 2
        assert view.live_addresses() == ["127.0.0.1:7001"]

    def test_suspect_still_counts_as_live(self):
        view = ClusterView(suspect_after=1, dead_after=3)
        view.register("127.0.0.1:7001")
        view.record_probe("127.0.0.1:7001", ok=False)
        assert view.states()["127.0.0.1:7001"] == "suspect"
        assert view.live_addresses() == ["127.0.0.1:7001"]

    def test_leave_drops_the_member_without_a_death(self):
        view = ClusterView()
        view.register("127.0.0.1:7001")
        view.leave("127.0.0.1:7001")
        assert view.members() == []
        assert view.transitions[-1][1:3] == ("alive", "")
        view.leave("127.0.0.1:7001")  # idempotent

    def test_bad_config_and_address_are_typed_errors(self):
        with pytest.raises(MembershipError):
            ClusterView(suspect_after=0)
        with pytest.raises(MembershipError):
            ClusterView(suspect_after=5, dead_after=2)
        with pytest.raises(MembershipError):
            ClusterView().register("no-port-here")


class TestChaosSpecEdges:
    def test_unknown_site_is_a_typed_error(self):
        with pytest.raises(ChaosSpecError, match="unknown site"):
            parse_rules("kill@node.nonexistent")
        # the typed error is both an AStoreError and a ValueError
        try:
            parse_rules("kill@node.nonexistent")
        except ChaosSpecError as exc:
            assert isinstance(exc, AStoreError)
            assert isinstance(exc, ValueError)

    @pytest.mark.parametrize("spec", [
        "kill@node.run=1",
        "drop@coordinator.send=0.5",
        "error@serve.request=2",
        "corrupt@node.response=1",
        "flap@membership.heartbeat=3",
    ])
    def test_value_on_non_delay_action_is_rejected(self, spec):
        with pytest.raises(ChaosSpecError, match="only the delay action"):
            parse_rules(spec)

    def test_first_combined_with_count(self):
        (rule,) = parse_rules("error@node.run:3x5")
        assert (rule.first, rule.count) == (3, 5)
        assert [rule.due(hit) for hit in range(1, 10)] == [
            False, False, True, True, True, True, True, False, False]

    def test_flap_alternates_within_its_window(self):
        controller = ChaosController(
            parse_rules("flap@membership.heartbeat:1x0"))
        outcomes = []
        for _ in range(6):
            try:
                controller.fire("membership.heartbeat")
                outcomes.append("up")
            except ChaosDrop:
                outcomes.append("down")
        assert outcomes == ["down", "up", "down", "up", "down", "up"]

    @pytest.mark.parametrize("spec", [
        "kill@node.run:x",          # non-integer trigger
        "delay@node.run=abc",       # non-numeric value
        "delay@node.run:1.5",       # fractional hit index
    ])
    def test_malformed_triggers_and_values_raise(self, spec):
        with pytest.raises(ChaosSpecError):
            parse_rules(spec)


class TestMembershipWire:
    def test_join_members_leave_round_trip(self):
        stamps = (("lineorder", 3), ("date", 1))
        with MembershipServer(probe_seconds=0,
                              stamps_fn=lambda: stamps) as server:
            got_stamps, incarnation = announce_join(
                server.address, "127.0.0.1:9999", pid=123)
            assert tuple(got_stamps) == stamps and incarnation == 1
            # rejoin: same address, bumped incarnation
            _, incarnation = announce_join(server.address, "127.0.0.1:9999")
            assert incarnation == 2
            client = MembershipClient(server.address, ttl_seconds=0)
            assert client.members() == [("127.0.0.1:9999", "alive", 2)]
            assert client.live_addresses() == ["127.0.0.1:9999"]
            announce_leave(server.address, "127.0.0.1:9999")
            assert client.members() == []

    def test_client_degrades_to_last_snapshot_when_server_dies(self):
        server = MembershipServer(probe_seconds=0)
        server.start()
        announce_join(server.address, "127.0.0.1:9999")
        client = MembershipClient(server.address, ttl_seconds=0)
        assert client.live_addresses() == ["127.0.0.1:9999"]
        server.close()
        # the cached snapshot keeps answering; no exception
        assert client.live_addresses() == ["127.0.0.1:9999"]

    def test_unreachable_server_is_a_typed_error(self):
        with pytest.raises(MembershipError):
            announce_join("127.0.0.1:1", "127.0.0.1:9999", timeout=0.5)
        with pytest.raises(MembershipError):
            announce_join("nonsense", "127.0.0.1:9999")
        # leave is best-effort by design: no raise
        announce_leave("127.0.0.1:1", "127.0.0.1:9999", timeout=0.5)

    def test_prober_declares_an_unreachable_member_dead(self):
        view = ClusterView(suspect_after=1, dead_after=2)
        with MembershipServer(view=view, probe_seconds=0.05,
                              probe_timeout=0.25) as server:
            # nothing listens on this address: every probe misses
            announce_join(server.address, "127.0.0.1:9")
            wait_until(lambda: view.states().get("127.0.0.1:9") == "dead",
                       message="member declared dead")
        moves = [(old, new) for addr, old, new, _ in view.transitions
                 if addr == "127.0.0.1:9"]
        assert moves == [("", "alive"), ("alive", "suspect"),
                         ("suspect", "dead")]

    def test_flap_oscillates_suspect_alive_without_death(self, tiny_star):
        node = ShardNode(tiny_star)
        server_thread = threading.Thread(target=node.serve_forever,
                                         daemon=True)
        server_thread.start()
        view = ClusterView(suspect_after=1, dead_after=4)
        install_chaos("flap@membership.heartbeat:1x0")
        try:
            with MembershipServer(view=view, probe_seconds=0.05,
                                  probe_timeout=1.0) as server:
                announce_join(server.address, node.address)
                wait_until(
                    lambda: len([t for t in view.transitions
                                 if t[0] == node.address]) >= 5,
                    message="at least five flap transitions")
        finally:
            clear_chaos()
            node.stop()
            node.close()
        moves = [(old, new) for addr, old, new, _ in view.transitions
                 if addr == node.address]
        # down, up, down, up ... — suspect and back, never dead
        assert moves[0] == ("", "alive")
        assert all(move in (("alive", "suspect"), ("suspect", "alive"))
                   for move in moves[1:])
        assert "dead" not in view.states().values()


class TestCircuitBreaker:
    def make(self, threshold=2, reset=1.0):
        now = [0.0]
        notes = []
        breaker = CircuitBreaker(threshold=threshold, reset_seconds=reset,
                                 clock=lambda: now[0],
                                 on_transition=notes.append)
        return breaker, now, notes

    def test_opens_after_threshold_and_probes_half_open(self):
        breaker, now, notes = self.make()
        assert breaker.admits()
        breaker.record(False)
        assert breaker.state == "closed" and breaker.admits()
        breaker.record(False)
        assert breaker.state == "open" and notes == ["opened"]
        assert not breaker.admits()
        now[0] = 1.5  # past the reset window
        assert breaker.admits()  # the half-open probe
        assert breaker.state == "half-open"
        # only ONE probe is admitted while it is in flight
        assert not breaker.admits()
        breaker.record(True)
        assert breaker.state == "closed" and breaker.admits()
        assert notes == ["opened", "half_open", "closed"]

    def test_failed_probe_reopens_immediately(self):
        breaker, now, notes = self.make()
        breaker.record(False)
        breaker.record(False)
        now[0] = 1.5
        assert breaker.admits()
        breaker.record(False)  # the probe failed
        assert breaker.state == "open"
        assert not breaker.admits()
        now[0] = 3.0  # a fresh window from the reopen
        assert breaker.admits()
        breaker.record(True)
        assert breaker.state == "closed"
        assert notes == ["opened", "half_open", "opened",
                         "half_open", "closed"]

    def test_success_resets_the_failure_streak(self):
        breaker, _, notes = self.make(threshold=3)
        breaker.record(False)
        breaker.record(False)
        breaker.record(True)
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == "closed" and breaker.admits()
        assert notes == []


class TestBreakerGatesReactivation:
    def test_membership_vouching_does_not_bypass_the_breaker(self):
        db = build_tiny_star()
        view = ClusterView()
        view.register("127.0.0.1:9991")
        view.register("127.0.0.1:9992")
        with RemoteShardBackend(db, membership=view, heartbeat_seconds=0,
                                breaker_threshold=1,
                                breaker_reset=60.0) as backend:
            assert backend.counters["nodes_joined"] == 2
            assert backend.workers == 2
            link = backend._link_map["127.0.0.1:9991"]
            # this coordinator watched the node die
            link.breaker.record(False)
            backend._mark_dead(link, None)
            assert backend.counters["breaker_opened"] == 1
            assert [l.address for l in backend.alive_nodes()] == [
                "127.0.0.1:9992"]
            # membership still vouches (same incarnation): the link is
            # reactivated but the open breaker keeps gating traffic
            backend._refresh_membership(None)
            assert link.alive
            assert [l.address for l in backend.alive_nodes()] == [
                "127.0.0.1:9992"]
            # past the reset window exactly one probe is readmitted
            link.breaker.clock = lambda: link.breaker.opened_at + 99.0
            assert [l.address for l in backend.alive_nodes()] == [
                "127.0.0.1:9991", "127.0.0.1:9992"]
            assert backend.counters["breaker_half_open"] == 1
            assert [l.address for l in backend.alive_nodes()] == [
                "127.0.0.1:9992"]  # the probe is in flight
            link.breaker.record(True)
            assert backend.counters["breaker_closed"] == 1
            assert len(backend.alive_nodes()) == 2

    def test_incarnation_bump_resets_the_link_outright(self):
        db = build_tiny_star()
        view = ClusterView()
        view.register("127.0.0.1:9991")
        with RemoteShardBackend(db, membership=view, heartbeat_seconds=0,
                                breaker_threshold=1,
                                breaker_reset=60.0) as backend:
            link = backend._link_map["127.0.0.1:9991"]
            link.breaker.record(False)
            link.stale = True
            backend._mark_dead(link, None)
            assert not backend.alive_nodes()
            # a genuine restart: re-registration bumps the incarnation
            view.register("127.0.0.1:9991")
            report = {}
            backend._refresh_membership(report)
            assert report["nodes_joined"] == 1
            assert link.alive and not link.stale
            assert link.incarnation == 2
            assert link.breaker.state == "closed"
            assert len(backend.alive_nodes()) == 1


class TestRejoin:
    def test_kill_restart_rejoin_bit_identical(self, ssb_path, ssb_db,
                                               ssb_truth):
        with MembershipServer(stamps_fn=lambda: database_stamp(ssb_db),
                              probe_seconds=0.1,
                              probe_timeout=1.0) as server:
            with LocalNodes(ssb_path, count=2,
                            membership=server.address) as nodes:
                addr0 = nodes.nodes[0].address
                with member_engine(ssb_db, server,
                                   breaker_reset=30.0) as engine:
                    # healthy: both registered nodes serve, nothing local
                    healthy = engine.query(SSB_QUERIES["Q1.1"])
                    assert client_rows(healthy) == ssb_truth["Q1.1"]
                    stats = healthy.stats
                    assert stats.remote_nodes_lost == 0
                    assert stats.remote_local_shards == 0

                    nodes.kill(0)
                    degraded = engine.query(SSB_QUERIES["Q2.1"])
                    assert client_rows(degraded) == ssb_truth["Q2.1"]
                    # the loss lands in the backend counters whether the
                    # scatter wave or the heartbeat loop noticed first
                    assert engine._shard_backend.counters[
                        "nodes_lost"] >= 1

                    # the prober notices the death independently
                    wait_until(
                        lambda: server.view.states().get(addr0) == "dead",
                        message="membership view declares the node dead")

                    # restart on the same port: the node re-registers
                    nodes.restart(0)
                    member = server.view.get(addr0)
                    assert member.state == "alive"
                    assert member.incarnation == 2

                    # the next waves fold the rejoined node back in
                    joined = 0
                    deadline = time.monotonic() + 10.0
                    while joined == 0 and time.monotonic() < deadline:
                        joined += engine.query(
                            SQL_YEAR).stats.remote_nodes_joined
                        time.sleep(0.1)
                    assert joined >= 1

                    # full differential: bit-identical to serial again,
                    # with the rejoined node actually serving shards
                    for qid, sql in SSB_QUERIES.items():
                        result = engine.query(sql)
                        assert client_rows(result) == ssb_truth[qid], qid
                    assert result.stats.remote_local_shards == 0
                assert nodes.shutdown()
        moves = [(old, new) for addr, old, new, _ in server.view.transitions
                 if addr == addr0]
        assert ("suspect", "dead") in moves
        assert ("dead", "alive") in moves  # the re-registration

    def test_rejoined_stale_copy_refuses_via_join_stamps(self, tmp_path):
        db = build_tiny_star()
        path = str(tmp_path / "tiny.npz")
        save_database(db, path)
        coordinator_db = load_database(path)
        with MembershipServer(
                stamps_fn=lambda: database_stamp(coordinator_db),
                probe_seconds=0.1, probe_timeout=1.0) as server:
            with LocalNodes(path, count=2,
                            membership=server.address) as nodes:
                addr0 = nodes.nodes[0].address
                with member_engine(coordinator_db, server,
                                   breaker_reset=30.0) as engine:
                    pre = engine.query(SQL_YEAR)
                    assert pre.stats.remote_local_shards == 0

                    nodes.kill(0)
                    engine.query(SQL_YEAR)  # the loss is absorbed
                    wait_until(
                        lambda: server.view.states().get(addr0) == "dead",
                        message="dead declaration before the restart")

                    # mutate while the node is down: its archive copy is
                    # now stale, and it will never hear the broadcast —
                    # only the join reply's stamps can fence it
                    coordinator_db.table("lineorder").update(
                        [0], {"lo_revenue": [10_000]})
                    nodes.restart(0)

                    with AStoreEngine(coordinator_db, EngineOptions(
                            parallel_backend="serial",
                            use_cache=False)) as serial:
                        truth = client_rows(serial.query(SQL_YEAR))
                    backend = engine._shard_backend
                    # the rejoined node refuses its shards (stale lane
                    # seeded by the join reply) — every answer along the
                    # way reflects the mutation, never the stale copy
                    post = engine.query(SQL_YEAR)
                    assert client_rows(post) == truth
                    assert client_rows(post) != client_rows(pre)
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        link = backend._link_map.get(addr0)
                        if link is not None and link.stale:
                            break
                        assert client_rows(
                            engine.query(SQL_YEAR)) == truth
                        time.sleep(0.1)
                    assert backend._link_map[addr0].stale
                    assert backend.counters["stale_refusals"] >= 1
                assert nodes.shutdown()


class TestGracefulShutdown:
    def test_sigterm_finishes_inflight_deregisters_exits_zero(
            self, ssb_path, ssb_db, ssb_truth):
        with MembershipServer(probe_seconds=0) as server:
            # node 0 stalls 0.4 s on every execution: SIGTERM lands
            # while its shard is in flight
            with LocalNodes(ssb_path, count=2, membership=server.address,
                            chaos=["delay@node.run:1x0=0.4", ""]) as nodes:
                addr0 = nodes.nodes[0].address
                assert addr0 in server.view.states()
                with member_engine(ssb_db, server) as engine:
                    results = []
                    worker = threading.Thread(
                        target=lambda: results.append(
                            engine.query(SQL_YEAR)))
                    worker.start()
                    time.sleep(0.15)  # node 0 is mid-shard now
                    exitcode = nodes.terminate(0)
                    worker.join(timeout=30)
                    assert not worker.is_alive()
                    # graceful: in-flight answered, clean exit code
                    assert exitcode == 0
                    with AStoreEngine(ssb_db, EngineOptions(
                            parallel_backend="serial",
                            use_cache=False)) as serial:
                        assert client_rows(results[0]) == client_rows(
                            serial.query(SQL_YEAR))
                # ...and it deregistered instead of reading as a death
                wait_until(lambda: addr0 not in server.view.states(),
                           timeout=5.0, message="graceful deregistration")
                moves = [(old, new)
                         for addr, old, new, _ in server.view.transitions
                         if addr == addr0]
                assert moves[-1][1] == ""  # a leave, not a death
                assert ("suspect", "dead") not in moves

    def test_idle_sigterm_exits_zero(self, ssb_path):
        with MembershipServer(probe_seconds=0) as server:
            with LocalNodes(ssb_path, count=1,
                            membership=server.address) as nodes:
                assert nodes.terminate(0) == 0
                assert server.view.states() == {}


class TestHedgedRequests:
    def test_slow_node_is_hedged_to_a_survivor(self, ssb_path, ssb_db):
        with LocalNodes(ssb_path, count=2,
                        chaos=["delay@node.run:1x0=0.6", ""]) as nodes:
            with AStoreEngine(ssb_db, EngineOptions(
                    parallel_backend="remote",
                    remote_nodes=nodes.addresses, use_cache=False,
                    node_timeout=15.0, node_hedge=0.15)) as engine:
                result = engine.query(SQL_YEAR)
                with AStoreEngine(ssb_db, EngineOptions(
                        parallel_backend="serial",
                        use_cache=False)) as serial:
                    assert client_rows(result) == client_rows(
                        serial.query(SQL_YEAR))
                backend = engine._shard_backend
                assert backend.counters["hedges"] >= 1
                assert backend.counters["hedge_wins"] >= 1
                # a slow node is raced, not declared dead
                assert result.stats.remote_nodes_lost == 0
            assert nodes.shutdown()


class TestOverloadFrontDoor:
    def test_chaos_admit_forces_a_structured_shed(self):
        import asyncio

        db = build_tiny_star()
        with AStoreEngine(db, EngineOptions(parallel_backend="serial",
                                            use_cache=False)) as probe:
            expected = [list(row) for row in probe.query(SQL_YEAR).rows()]
        install_chaos("error@coordinator.admit:1")

        async def main():
            engine = AsyncEngine(db)
            server = await serve_tcp(engine, "127.0.0.1", 0)
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({"sql": SQL_YEAR, "id": 1}).encode()
                         + b"\n")
            await writer.drain()
            shed = json.loads(await reader.readline())
            assert shed["id"] == 1 and shed["overloaded"] is True
            assert "error" in shed and "rows" not in shed
            # the rule is spent: the retry is admitted and exact
            writer.write(json.dumps({"sql": SQL_YEAR, "id": 2}).encode()
                         + b"\n")
            await writer.drain()
            ok = json.loads(await reader.readline())
            assert ok["id"] == 2 and ok["rows"] == expected
            writer.write(b"STATS\n")
            await writer.drain()
            stats = json.loads(await reader.readline())
            assert stats["shed"] == 1
            writer.close()
            await server.stop()
            assert server.shed == 1

        asyncio.run(main())

    def test_max_pending_sheds_but_accepted_requests_stay_exact(self):
        import asyncio

        db = build_tiny_star()
        with AStoreEngine(db, EngineOptions(parallel_backend="serial",
                                            use_cache=False)) as probe:
            expected = [list(row) for row in probe.query(SQL_YEAR).rows()]
        # every admitted request stalls 0.5 s inside the engine, so the
        # second arrival finds max_pending=1 already in flight
        install_chaos("delay@serve.request:1x0=0.5")

        async def main():
            engine = AsyncEngine(db, EngineOptions(
                parallel_backend="serial", use_cache=False))
            server = await serve_tcp(engine, "127.0.0.1", 0, max_pending=1)
            host, port = server.address
            slow_reader, slow_writer = await asyncio.open_connection(
                host, port)
            slow_writer.write(json.dumps(
                {"sql": SQL_YEAR, "id": "slow"}).encode() + b"\n")
            await slow_writer.drain()
            await asyncio.sleep(0.1)  # the slow request is in flight
            fast_reader, fast_writer = await asyncio.open_connection(
                host, port)
            fast_writer.write(json.dumps(
                {"sql": SQL_YEAR, "id": "fast"}).encode() + b"\n")
            await fast_writer.drain()
            shed = json.loads(await fast_reader.readline())
            assert shed["id"] == "fast" and shed["overloaded"] is True
            assert "max_pending=1" in shed["error"]
            # the admitted request is untouched by the shed
            slow = json.loads(await slow_reader.readline())
            assert slow["id"] == "slow" and slow["rows"] == expected
            # capacity freed: the retry is admitted and exact
            fast_writer.write(json.dumps(
                {"sql": SQL_YEAR, "id": "retry"}).encode() + b"\n")
            await fast_writer.drain()
            retry = json.loads(await fast_reader.readline())
            assert retry["id"] == "retry" and retry["rows"] == expected
            slow_writer.close()
            fast_writer.close()
            await server.stop()
            assert server.shed == 1

        asyncio.run(main())

    def test_serve_over_membership_backend_answers_exact(self, ssb_path,
                                                         ssb_db, ssb_truth):
        import asyncio

        with MembershipServer(stamps_fn=lambda: database_stamp(ssb_db),
                              probe_seconds=0.1) as membership:
            with LocalNodes(ssb_path, count=2,
                            membership=membership.address) as nodes:
                async def main():
                    engine = AsyncEngine(ssb_db, EngineOptions(
                        parallel_backend="remote",
                        membership=membership.address,
                        use_cache=False, node_timeout=15.0))
                    server = await serve_tcp(engine, "127.0.0.1", 0)
                    host, port = server.address
                    reader, writer = await asyncio.open_connection(
                        host, port)
                    writer.write(json.dumps(
                        {"sql": SSB_QUERIES["Q1.1"], "id": 1}).encode()
                        + b"\n")
                    await writer.drain()
                    response = json.loads(await reader.readline())
                    writer.close()
                    await server.stop()
                    await engine.aclose()
                    return response

                response = asyncio.run(main())
                rows = json.loads(json.dumps(
                    [[str(v) for v in row] for row in response["rows"]]))
                assert rows == ssb_truth["Q1.1"]
                assert nodes.shutdown()


class TestStampLaneReconnect:
    def test_lane_survives_a_dropped_coordinator_socket(self, tmp_path):
        db = build_tiny_star()
        path = str(tmp_path / "tiny.npz")
        save_database(db, path)
        with LocalNodes(path, count=1) as nodes:
            link = _NodeLink(nodes.addresses[0])
            assert link.request(("stamps", (("lineorder", 7),)),
                                timeout=5.0) == ("ok",)
            # the coordinator's socket drops; the lane is node state
            link.reset()
            response = link.request(("lane",), timeout=5.0)
            assert response[0] == "ok"
            assert response[1]["lineorder"] == 7
            link.reset()
            assert nodes.shutdown()

    def test_chaos_dropped_send_reconnects_with_counts_retained(
            self, tmp_path):
        db = build_tiny_star()
        path = str(tmp_path / "tiny.npz")
        save_database(db, path)
        with LocalNodes(path, count=1) as nodes:
            link = _NodeLink(nodes.addresses[0])
            install_chaos("drop@coordinator.send:2")
            assert link.request(("stamps", (("lineorder", 9),)),
                                timeout=5.0) == ("ok",)
            with pytest.raises(ChaosDrop):
                link.request(("lane",), timeout=5.0)
            link.reset()  # exactly what _request_shard does on failure
            response = link.request(("lane",), timeout=5.0)
            assert response == ("ok", {"lineorder": 9})
            link.reset()
            assert nodes.shutdown()


class TestAtexitReaper:
    def test_interpreter_exit_reaps_unclosed_nodes(self, tmp_path):
        db = build_tiny_star()
        path = str(tmp_path / "tiny.npz")
        save_database(db, path)
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        script = textwrap.dedent(f"""
            import sys
            sys.path.insert(0, {src!r})
            from repro.engine.distributed import LocalNodes
            nodes = LocalNodes({path!r}, count=1)
            print(nodes.nodes[0].pid, flush=True)
            # exit WITHOUT close(): the atexit reaper must kill the node
        """)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, timeout=180)
        assert proc.returncode == 0, proc.stderr
        pid = int(proc.stdout.strip().split()[-1])

        def gone():
            try:
                os.kill(pid, 0)
            except OSError:
                return True
            return False

        wait_until(gone, timeout=10.0, message="node process reaped")


class TestMembershipSweep:
    def test_bench_mode_records_the_whole_story(self, ssb_path):
        from repro.bench import membership_rows, membership_sweep

        times = membership_sweep(database_path=ssb_path, node_count=2,
                                 query_ids=["Q1.1", "Q2.1", "Q3.1"])
        assert times["healthy"]["mismatches"] == []
        assert times["kill"]["killed_index"] == 0
        assert times["kill"]["mismatches"] == []
        assert times["kill"]["lost"] >= 1
        assert times["dead_detected"]
        assert times["rejoin_incarnation"] == 2
        assert times["rejoin"]["mismatches"] == []
        assert times["rejoin"]["joined"] >= 1
        overload = times["overload"]
        assert overload["mismatches"] == []
        assert overload["shed"] >= 1 and overload["accepted"] >= 1
        assert overload["shed"] + overload["accepted"] == \
            overload["requests"]
        assert times["clean_shutdown"]
        assert times["healed"] is True
        # the killed node's full arc is in the recorded transitions
        moves = [(old, new) for _, old, new, _ in times["transitions"]]
        assert ("suspect", "dead") in moves
        assert ("dead", "alive") in moves
        # the table renders one row per phase
        assert [row[0] for row in membership_rows(times)] == [
            "healthy", "kill", "rejoin", "overload"]

"""Differential gate for the operator-DAG refactor.

Every engine in the repo now executes through the shared operator layer
(:mod:`repro.engine.operators`).  These tests assert that DAG execution
produces identical rows on *all* SSB queries at sf=0.01 for every
AIRScan variant, every baseline engine, and the morsel-driven
configurations that did not exist pre-refactor (fixed-size morsels,
thread-dispatched partitions).

Equivalence with the pre-refactor executor was established when the
refactor landed by running the seed executor (git ``a0900d5``) and this
engine side by side over all 117 (engine, query) pairs below with a
pinned ``PYTHONHASHSEED`` — zero mismatches.  Since all engines agree
with one shared reference here, any later divergence from the seed
semantics shows up as a failure of this module.
"""

import pytest

from repro.baselines import (
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
)
from repro.engine import AStoreEngine, EngineOptions, VARIANTS
from repro.workloads import SSB_QUERIES

QUERY_IDS = list(SSB_QUERIES)


@pytest.fixture(scope="module")
def reference(ssb_air):
    engine = AStoreEngine.variant(ssb_air, "AIRScan_C_P_G")
    return {qid: engine.query(SSB_QUERIES[qid]).rows() for qid in QUERY_IDS}


class TestVariantsThroughDAG:
    @pytest.mark.parametrize("variant", list(VARIANTS))
    def test_variant_matches_reference(self, ssb_air, reference, variant):
        engine = AStoreEngine.variant(ssb_air, variant)
        for qid in QUERY_IDS:
            assert engine.query(SSB_QUERIES[qid]).rows() == reference[qid], \
                f"{variant} diverged on {qid}"

    @pytest.mark.parametrize("options", [
        EngineOptions(workers=3, parallel_backend="thread"),
        EngineOptions(workers=3, parallel_backend="serial"),
        EngineOptions(morsel_rows=8192),
        EngineOptions(workers=2, morsel_rows=8192),
        EngineOptions(scan="row", chunk_rows=7000),
    ], ids=["threads", "serial-partitions", "morsels", "morsel-threads",
            "row-chunks"])
    def test_morsel_configurations_match(self, ssb_air, reference, options):
        engine = AStoreEngine(ssb_air, options)
        for qid in QUERY_IDS:
            assert engine.query(SSB_QUERIES[qid]).rows() == reference[qid], \
                f"{options} diverged on {qid}"


class TestBaselinesThroughDAG:
    @pytest.mark.parametrize("make_engine", [
        MaterializingEngine,
        FusedEngine,
        VectorizedPipelineEngine,
        lambda db: VectorizedPipelineEngine(db, block_rows=4096),
    ], ids=["materializing", "fused", "vectorized", "vectorized-small"])
    def test_baseline_matches_reference(self, ssb_raw, reference,
                                        make_engine):
        engine = make_engine(ssb_raw)
        for qid in QUERY_IDS:
            assert engine.query(SSB_QUERIES[qid]).rows() == reference[qid], \
                f"{engine.name} diverged on {qid}"

    def test_baselines_report_morsel_stats(self, ssb_raw):
        small = VectorizedPipelineEngine(ssb_raw, block_rows=8192)
        result = small.query(SSB_QUERIES["Q2.1"])
        assert result.stats.morsels > 1
        assert result.stats.operator_seconds
        fused = FusedEngine(ssb_raw).query(SSB_QUERIES["Q2.1"])
        assert fused.stats.morsels == 1

"""Unit tests for the vectorized operator layer and morsel dispatcher."""

import numpy as np
import pytest

from repro.core import Database
from repro.engine import AStoreEngine, EngineOptions
from repro.engine.operators import (
    Aggregate,
    AIRProbe,
    ApplyMask,
    Filter,
    GroupCombine,
    IntersectScan,
    MaskFilter,
    MaterializeColumns,
    Morsel,
    MorselDispatcher,
    PredicateFilter,
    Project,
    ValueGather,
    merge_timings,
    value_grouping,
)
from repro.engine.result import ExecutionStats
from repro.engine.slice import universal_provider
from repro.errors import ExecutionError
from repro.plan import bind, optimize
from repro.plan.expressions import BoundColumn

from .conftest import build_tiny_star


@pytest.fixture(scope="module")
def star():
    return build_tiny_star()


def make_morsel(db: Database, logical, positions=None) -> Morsel:
    table = db.table(logical.root)
    if positions is None:
        positions = np.arange(table.num_rows, dtype=np.int64)
    return Morsel(positions, universal_provider(
        db, logical.root, logical.paths, positions))


def plan_for(db, sql):
    logical = bind(sql, db)
    return optimize(logical, db)


class TestMorsel:
    def test_refine_shrinks_positions_and_provider(self, star):
        physical = plan_for(star, "SELECT count(*) FROM lineorder, date")
        morsel = make_morsel(star, physical.logical)
        keep = np.zeros(8, dtype=bool)
        keep[[1, 4, 6]] = True
        refined = morsel.refine(keep)
        assert list(refined.positions) == [1, 4, 6]
        assert refined.provider.length == 3

    def test_refine_empty_selection(self, star):
        physical = plan_for(star, "SELECT count(*) FROM lineorder")
        morsel = make_morsel(star, physical.logical)
        refined = morsel.refine(np.zeros(8, dtype=bool))
        assert len(refined) == 0
        assert refined.provider.length == 0

    def test_refine_slices_codes(self, star):
        physical = plan_for(star, "SELECT count(*) FROM lineorder")
        morsel = make_morsel(star, physical.logical)
        morsel.codes = np.arange(8, dtype=np.int64)
        refined = morsel.refine(np.array([True] * 4 + [False] * 4))
        assert list(refined.codes) == [0, 1, 2, 3]


class TestFilterOperators:
    def test_filter_refines(self, star):
        physical = plan_for(
            star, "SELECT count(*) FROM lineorder WHERE lo_revenue >= 50")
        (expr, _), = physical.fact_conjuncts
        morsel = Filter(expr).process(make_morsel(star, physical.logical))
        assert list(morsel.positions) == [4, 5, 6, 7]

    def test_filter_on_empty_morsel_is_noop(self, star):
        physical = plan_for(
            star, "SELECT count(*) FROM lineorder WHERE lo_revenue >= 50")
        (expr, _), = physical.fact_conjuncts
        empty = make_morsel(star, physical.logical,
                            np.empty(0, dtype=np.int64))
        assert len(Filter(expr).process(empty)) == 0

    def test_all_filtered_morsel(self, star):
        physical = plan_for(
            star, "SELECT count(*) FROM lineorder WHERE lo_revenue > 999")
        (expr, _), = physical.fact_conjuncts
        morsel = Filter(expr).process(make_morsel(star, physical.logical))
        assert len(morsel) == 0

    def test_air_probe_vector(self, star):
        physical = plan_for(
            star, "SELECT count(*) FROM lineorder, date WHERE d_year = 1997")
        # date rows 0,1 are 1997
        pf = PredicateFilter(np.array([True, True, False]))
        morsel = AIRProbe("date", "vector", pf).process(
            make_morsel(star, physical.logical))
        # lineorder rows with lo_orderdate in {19970101, 19970102}
        assert list(morsel.positions) == [0, 1, 2, 3, 6]

    def test_air_probe_predicate(self, star):
        physical = plan_for(
            star, "SELECT count(*) FROM lineorder, date WHERE d_year = 1997")
        (dd,) = physical.dim_decisions
        morsel = AIRProbe("date", "predicate", dd.predicate).process(
            make_morsel(star, physical.logical))
        assert list(morsel.positions) == [0, 1, 2, 3, 6]

    def test_air_probe_bad_mode_rejected(self):
        with pytest.raises(ExecutionError):
            AIRProbe("date", "bogus")

    def test_mask_filter_uses_global_positions(self, star):
        physical = plan_for(star, "SELECT count(*) FROM lineorder")
        live = np.zeros(8, dtype=bool)
        live[[0, 7]] = True
        sub = make_morsel(star, physical.logical,
                          np.array([5, 6, 7], dtype=np.int64))
        morsel = MaskFilter(live).process(sub)
        assert list(morsel.positions) == [7]

    def test_deferred_filters_and_apply_mask(self, star):
        physical = plan_for(
            star, "SELECT count(*) FROM lineorder "
                  "WHERE lo_revenue >= 30 AND lo_discount <= 2")
        exprs = [expr for expr, _ in physical.fact_conjuncts]
        morsel = make_morsel(star, physical.logical)
        for expr in exprs:
            morsel = Filter(expr, defer=True).process(morsel)
            assert len(morsel) == 8          # defer: no shrinking yet
        morsel = ApplyMask().process(morsel)
        # revenue>=30: rows 2..7; discount<=2: rows 0,1,4,5 -> {4,5}
        assert list(morsel.positions) == [4, 5]

    def test_intersect_scan_matches_chained_filters(self, star):
        physical = plan_for(
            star, "SELECT count(*) FROM lineorder "
                  "WHERE lo_revenue >= 30 AND lo_discount <= 2")
        steps = [Filter(expr) for expr, _ in physical.fact_conjuncts]
        chained = make_morsel(star, physical.logical)
        for step in [Filter(expr) for expr, _ in physical.fact_conjuncts]:
            chained = step.process(chained)
        at_once = IntersectScan(steps).process(
            make_morsel(star, physical.logical))
        assert list(at_once.positions) == list(chained.positions)


class TestMaterializeAndProject:
    def test_materialize_overlays_decoded_columns(self, star):
        physical = plan_for(
            star, "SELECT count(*) FROM lineorder, customer "
                  "WHERE c_region = 'ASIA'")
        morsel = make_morsel(star, physical.logical)
        cols = [BoundColumn("customer", "c_region"),
                BoundColumn("lineorder", "lo_revenue")]
        morsel = MaterializeColumns(cols).process(morsel)
        values = morsel.provider.fetch("customer", "c_region").decode()
        assert list(values[:4]) == ["ASIA", "ASIA", "EUROPE", "AMERICA"]
        # positional probes still resolve through the underlying provider
        assert morsel.provider.positions_for("customer") is not None

    def test_materialized_overlay_survives_refine(self, star):
        physical = plan_for(star, "SELECT count(*) FROM lineorder, customer")
        morsel = MaterializeColumns(
            [BoundColumn("customer", "c_region")]).process(
                make_morsel(star, physical.logical))
        refined = morsel.refine(np.array([True, False] * 4))
        values = refined.provider.fetch("customer", "c_region").decode()
        # kept rows 0,2,4,6 -> custkeys 1,3,1,3 -> their regions
        assert list(values) == ["ASIA", "EUROPE", "ASIA", "EUROPE"]

    def test_project_concatenates_chunks(self, star):
        physical = plan_for(star, "SELECT lo_orderkey FROM lineorder")
        project = Project(physical.logical.projection_columns)
        project.process(make_morsel(star, physical.logical,
                                    np.arange(4, dtype=np.int64)))
        project.process(make_morsel(star, physical.logical,
                                    np.arange(4, 8, dtype=np.int64)))
        out = project.finish()
        assert list(out["lo_orderkey"]) == [1, 2, 3, 4, 5, 6, 7, 8]


class TestGroupingAndAggregation:
    def _grouped_plan(self, star):
        return plan_for(
            star, "SELECT d_year, sum(lo_revenue) AS s "
                  "FROM lineorder, date GROUP BY d_year")

    def test_group_combine_and_array_aggregate(self, star):
        from repro.engine.grouping import build_axes

        physical = self._grouped_plan(star)
        axes = build_axes(star, physical.logical)
        morsel = GroupCombine(axes).process(
            make_morsel(star, physical.logical))
        assert morsel.codes is not None and len(morsel.codes) == 8
        agg = Aggregate(physical.logical.aggregates,
                        ngroups=axes[0].card, use_array=True)
        agg.process(morsel)
        state = agg.finish()
        assert state is not None and state.is_dense

    def test_array_and_hash_agree(self, star):
        from repro.engine.grouping import build_axes
        from repro.engine.aggregate import finalize

        physical = self._grouped_plan(star)
        axes = build_axes(star, physical.logical)
        morsel = GroupCombine(axes).process(
            make_morsel(star, physical.logical))
        results = []
        for use_array in (True, False):
            agg = Aggregate(physical.logical.aggregates,
                            ngroups=axes[0].card, use_array=use_array)
            agg.process(morsel)
            ids, out = finalize(agg.finish())
            results.append((list(ids), {k: list(v) for k, v in out.items()}))
        assert results[0] == results[1]

    def test_aggregate_without_codes_rejected(self, star):
        physical = self._grouped_plan(star)
        agg = Aggregate(physical.logical.aggregates, ngroups=1,
                        use_array=True)
        with pytest.raises(ExecutionError):
            agg.process(make_morsel(star, physical.logical))

    def test_value_gather_and_grouping(self, star):
        physical = self._grouped_plan(star)
        gather = ValueGather(physical.logical)
        for chunk in (np.arange(4), np.arange(4, 8)):
            gather.process(make_morsel(star, physical.logical,
                                       chunk.astype(np.int64)))
        state = gather.finish()
        assert state.selected == 8
        axes, agg = value_grouping(physical.logical, state)
        assert [a.card for a in axes] == [2]    # 1997, 1998

    def test_value_gather_skips_empty_morsels(self, star):
        physical = self._grouped_plan(star)
        gather = ValueGather(physical.logical)
        gather.process(make_morsel(star, physical.logical,
                                   np.empty(0, dtype=np.int64)))
        state = gather.finish()
        assert state.selected == 0
        axes, agg = value_grouping(physical.logical, state)
        assert axes[0].card == 1                # empty domain clamps to 1


class TestMorselDispatcher:
    def test_partition_and_chunk(self):
        positions = np.arange(10, dtype=np.int64)
        parts = MorselDispatcher.partition(positions, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert len(MorselDispatcher.partition(positions, 1)) == 1
        chunks = MorselDispatcher.chunk(positions, 4)
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert len(MorselDispatcher.chunk(positions, 0)) == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError):
            MorselDispatcher("fiber")

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_backends_agree(self, star, backend):
        physical = plan_for(
            star, "SELECT count(*) FROM lineorder WHERE lo_revenue >= 30")
        (expr, _), = physical.fact_conjuncts
        dispatcher = MorselDispatcher(backend)
        morsels = [make_morsel(star, physical.logical, part) for part in
                   dispatcher.partition(np.arange(8, dtype=np.int64), 4)]
        results = dispatcher.run(morsels, lambda: [Filter(expr)])
        survivors = np.concatenate([r.morsel.positions for r in results])
        assert list(survivors) == [2, 3, 4, 5, 6, 7]

    def test_timings_and_finishes_surface(self, star):
        physical = plan_for(
            star, "SELECT d_year, count(*) AS n "
                  "FROM lineorder, date GROUP BY d_year")
        gather_label = []

        def pipeline():
            gather = ValueGather(physical.logical)
            gather_label.append(gather.label)
            return [gather]

        results = MorselDispatcher("serial").run(
            [make_morsel(star, physical.logical)], pipeline)
        (result,) = results
        assert gather_label[0] in result.finishes
        assert result.seconds > 0
        stats = ExecutionStats()
        merge_timings(stats, results)
        assert stats.operator_seconds.keys() == result.timings.keys()


class TestEngineMorselOptions:
    def test_morsel_rows_equivalent(self, ssb_air):
        sql = ("SELECT d_year, sum(lo_revenue) AS s FROM lineorder, date "
               "WHERE d_year >= 1993 GROUP BY d_year ORDER BY d_year")
        whole = AStoreEngine(ssb_air).query(sql)
        chunked = AStoreEngine(
            ssb_air, EngineOptions(morsel_rows=4096)).query(sql)
        assert chunked.rows() == whole.rows()
        assert chunked.stats.morsels > whole.stats.morsels

    def test_single_row_table(self):
        db = Database("one")
        db.create_table("d", {"d_key": [1], "d_name": ["only"]},
                        dict_threshold=1.0)
        db.create_table("f", {"f_d": [1], "f_v": [42]})
        db.add_reference("f", "f_d", "d", "d_key")
        db.airify()
        for options in (EngineOptions(), EngineOptions(scan="row"),
                        EngineOptions(workers=4)):
            result = AStoreEngine(db, options).query(
                "SELECT d_name, sum(f_v) AS s FROM f, d GROUP BY d_name")
            assert result.rows() == [("only", 42)]

    def test_operator_seconds_in_stats(self, ssb_air):
        result = AStoreEngine(ssb_air).query(
            "SELECT d_year, count(*) AS n FROM lineorder, date "
            "WHERE d_year = 1994 GROUP BY d_year")
        breakdown = result.stats.operator_breakdown()
        assert breakdown, "operator timings missing"
        labels = [label for label, _ in breakdown]
        assert any(label.startswith("probe[") or label.startswith("filter[")
                   for label in labels)
        assert any(label.startswith("aggregate") for label in labels)

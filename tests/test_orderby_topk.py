"""Tests for multi-key sorting and the top-k (LIMIT pushdown) path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import AStoreEngine
from repro.engine.orderby import sort_indices, top_k_indices
from repro.errors import ExecutionError
from repro.plan.binder import OrderKey


class TestTopK:
    def test_matches_full_sort_single_key(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 10_000, 5_000)
        columns = {"x": values}
        keys = [OrderKey("x", False)]
        full = sort_indices(columns, keys)[:50]
        topk = top_k_indices(columns, keys, 50)
        assert np.array_equal(values[full], values[topk])

    def test_descending(self):
        values = np.arange(1000)
        np.random.default_rng(0).shuffle(values)
        topk = top_k_indices({"x": values}, [OrderKey("x", True)], 10)
        assert values[topk].tolist() == list(range(999, 989, -1))

    def test_k_zero(self):
        assert len(top_k_indices({"x": np.arange(5)},
                                 [OrderKey("x", False)], 0)) == 0

    def test_k_exceeds_rows_falls_back(self):
        values = np.array([3, 1, 2])
        topk = top_k_indices({"x": values}, [OrderKey("x", False)], 10)
        assert values[topk].tolist() == [1, 2, 3]

    def test_multi_key_falls_back_to_full_sort(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 5, 2000)
        b = rng.integers(0, 100, 2000)
        columns = {"a": a, "b": b}
        keys = [OrderKey("a", False), OrderKey("b", True)]
        full = sort_indices(columns, keys)[:20]
        topk = top_k_indices(columns, keys, 20)
        assert np.array_equal(full, topk)

    def test_unknown_column_rejected(self):
        with pytest.raises(ExecutionError):
            top_k_indices({"x": np.arange(1000)},
                          [OrderKey("nope", False)], 5)

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.integers(-10_000, 10_000),
                           min_size=1, max_size=2000),
           k=st.integers(1, 50), descending=st.booleans())
    def test_property_topk_values_match(self, values, k, descending):
        arr = np.array(values, dtype=np.int64)
        topk = top_k_indices({"x": arr}, [OrderKey("x", descending)], k)
        expected = sorted(values, reverse=descending)[:k]
        assert arr[topk].tolist() == expected


class TestLimitPushdownThroughEngine:
    def test_top_revenue_query(self, ssb_air):
        sql_limited = ("SELECT lo_orderkey, lo_revenue FROM lineorder "
                       "ORDER BY lo_revenue DESC LIMIT 10")
        sql_full = ("SELECT lo_orderkey, lo_revenue FROM lineorder "
                    "ORDER BY lo_revenue DESC")
        engine = AStoreEngine(ssb_air)
        limited = engine.query(sql_limited).rows()
        full = engine.query(sql_full).rows()[:10]
        assert [r[1] for r in limited] == [r[1] for r in full]

    def test_grouped_query_with_limit(self, ssb_air):
        sql = ("SELECT c_nation, sum(lo_revenue) AS s FROM lineorder, "
               "customer GROUP BY c_nation ORDER BY s DESC LIMIT 3")
        rows = AStoreEngine(ssb_air).query(sql).rows()
        assert len(rows) == 3
        sums = [r[1] for r in rows]
        assert sums == sorted(sums, reverse=True)

"""Tests for the binder and optimizer."""

import pytest

from repro.errors import BindError, PlanError
from repro.plan import CacheModel, bind, optimize
from repro.plan.expressions import BoundColumn


class TestBinderRoot:
    def test_star_root(self, tiny_star):
        plan = bind("SELECT count(*) FROM lineorder, date "
                    "WHERE lo_orderdate = d_datekey", tiny_star)
        assert plan.root == "lineorder"
        assert [p.leaf for p in plan.paths] == ["date"]

    def test_root_without_explicit_joins(self, tiny_star):
        # joins are implied by the schema references
        plan = bind("SELECT count(*) FROM lineorder, date, customer",
                    tiny_star)
        assert plan.root == "lineorder"
        assert {p.leaf for p in plan.paths} == {"date", "customer"}

    def test_snowflake_root(self, tiny_snowflake):
        plan = bind(
            "SELECT count(*) FROM lineitem, orders, customer, nation, region",
            tiny_snowflake)
        assert plan.root == "lineitem"
        assert plan.first_level_dims == ["orders"]

    def test_disconnected_tables_rejected(self, tiny_star):
        with pytest.raises(PlanError):
            bind("SELECT count(*) FROM date, customer", tiny_star)

    def test_self_join_rejected(self, tiny_star):
        with pytest.raises(PlanError):
            bind("SELECT count(*) FROM lineorder, lineorder", tiny_star)

    def test_unknown_table(self, tiny_star):
        with pytest.raises(BindError):
            bind("SELECT count(*) FROM ghosts", tiny_star)


class TestBinderColumns:
    def test_unqualified_resolution(self, tiny_star):
        plan = bind("SELECT d_year, sum(lo_revenue) FROM lineorder, date "
                    "GROUP BY d_year", tiny_star)
        assert plan.group_keys[0].column == BoundColumn("date", "d_year")

    def test_unknown_column(self, tiny_star):
        with pytest.raises(BindError):
            bind("SELECT nonsense FROM lineorder", tiny_star)

    def test_qualified_wrong_table(self, tiny_star):
        with pytest.raises(BindError):
            bind("SELECT date.lo_revenue FROM lineorder, date", tiny_star)

    def test_ungrouped_column_rejected(self, tiny_star):
        with pytest.raises(PlanError):
            bind("SELECT d_year, sum(lo_revenue) FROM lineorder, date",
                 tiny_star)

    def test_duplicate_output_rejected(self, tiny_star):
        with pytest.raises(BindError):
            bind("SELECT sum(lo_revenue) AS x, count(*) AS x FROM lineorder",
                 tiny_star)


class TestWhereSplitting:
    def test_fact_vs_dim_conjuncts(self, tiny_star):
        plan = bind("""
            SELECT count(*) FROM lineorder, date, customer
            WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey
              AND lo_discount <= 2 AND d_year = 1997 AND c_region = 'ASIA'
        """, tiny_star)
        assert len(plan.fact_conjuncts) == 1
        assert set(plan.dim_conjuncts) == {"date", "customer"}

    def test_join_predicates_consumed(self, tiny_star):
        plan = bind("SELECT count(*) FROM lineorder, date "
                    "WHERE lo_orderdate = d_datekey", tiny_star)
        assert plan.fact_conjuncts == ()
        assert plan.dim_conjuncts == {}

    def test_undeclared_join_rejected(self, tiny_star):
        with pytest.raises(PlanError):
            bind("SELECT count(*) FROM lineorder, date "
                 "WHERE lo_revenue = d_datekey", tiny_star)

    def test_snowflake_predicate_folds_to_first_dim(self, tiny_snowflake):
        plan = bind("""
            SELECT count(*) FROM lineitem, orders, customer, nation, region
            WHERE r_name = 'ASIA' AND o_price >= 800
        """, tiny_snowflake)
        # both predicates fold onto the orders path (its first-level dim)
        assert set(plan.dim_conjuncts) == {"orders"}
        assert len(plan.dim_conjuncts["orders"]) == 2

    def test_cross_path_predicate_rejected(self, tiny_star):
        with pytest.raises(PlanError):
            bind("SELECT count(*) FROM lineorder, date, customer "
                 "WHERE d_year = 1997 OR c_region = 'ASIA'", tiny_star)


class TestSelectShapes:
    def test_scalar_aggregate(self, tiny_star):
        plan = bind("SELECT sum(lo_revenue) FROM lineorder", tiny_star)
        assert plan.group_keys == ()
        assert plan.aggregates[0].func == "SUM"

    def test_projection_plan(self, tiny_star):
        plan = bind("SELECT lo_orderkey, c_nation FROM lineorder, customer "
                    "WHERE lo_custkey = c_custkey", tiny_star)
        assert plan.is_projection
        assert [k.name for k in plan.projection_columns] == [
            "lo_orderkey", "c_nation"]

    def test_count_distinct_rejected(self, tiny_star):
        with pytest.raises(PlanError):
            bind("SELECT count(DISTINCT lo_custkey) FROM lineorder", tiny_star)

    def test_order_by_alias_and_aggregate(self, tiny_star):
        plan = bind("""
            SELECT d_year, sum(lo_revenue) AS revenue FROM lineorder, date
            GROUP BY d_year ORDER BY d_year ASC, sum(lo_revenue) DESC
        """, tiny_star)
        assert plan.order_by[0].output == "d_year"
        assert plan.order_by[1].output == "revenue"
        assert plan.order_by[1].descending

    def test_order_by_unknown_rejected(self, tiny_star):
        with pytest.raises(BindError):
            bind("SELECT d_year, sum(lo_revenue) FROM lineorder, date "
                 "GROUP BY d_year ORDER BY mystery", tiny_star)

    def test_default_aggregate_names(self, tiny_star):
        plan = bind("SELECT sum(lo_revenue), count(*) FROM lineorder",
                    tiny_star)
        assert plan.output_order == ("sum_lo_revenue", "count")


class TestOptimizer:
    def test_predicate_ordering_by_selectivity(self, tiny_star):
        logical = bind("""
            SELECT count(*) FROM lineorder
            WHERE lo_discount <= 4 AND lo_quantity <= 5
        """, tiny_star)
        physical = optimize(logical, tiny_star)
        # quantity <= 5 keeps 1/8 rows; discount <= 4 keeps all 8
        first_expr, first_sel = physical.fact_conjuncts[0]
        assert first_sel <= physical.fact_conjuncts[1][1]
        assert "lo_quantity" in str(first_expr)

    def test_filter_vs_probe_decision(self, tiny_star):
        logical = bind("SELECT count(*) FROM lineorder, customer "
                       "WHERE c_region = 'ASIA'", tiny_star)
        fits = optimize(logical, tiny_star,
                        cache=CacheModel(llc_bytes=1 << 20))
        assert fits.dim_decisions[0].use_filter
        tiny_cache = optimize(logical, tiny_star,
                              cache=CacheModel(llc_bytes=0))
        assert not tiny_cache.dim_decisions[0].use_filter

    def test_filter_disabled_globally(self, tiny_star):
        logical = bind("SELECT count(*) FROM lineorder, customer "
                       "WHERE c_region = 'ASIA'", tiny_star)
        physical = optimize(logical, tiny_star, use_predicate_filter=False)
        assert not physical.dim_decisions[0].use_filter

    def test_array_agg_auto_accepts_small_group_space(self, tiny_star):
        logical = bind("SELECT d_year, count(*) FROM lineorder, date "
                       "GROUP BY d_year", tiny_star)
        physical = optimize(logical, tiny_star)
        assert physical.use_array_agg
        assert physical.estimated_groups == 2  # 1997, 1998

    def test_array_agg_rejected_when_too_big(self, tiny_star):
        logical = bind("SELECT d_year, count(*) FROM lineorder, date "
                       "GROUP BY d_year", tiny_star)
        physical = optimize(logical, tiny_star,
                            cache=CacheModel(llc_bytes=4))
        assert not physical.use_array_agg

    def test_forced_hash_agg(self, tiny_star):
        logical = bind("SELECT d_year, count(*) FROM lineorder, date "
                       "GROUP BY d_year", tiny_star)
        physical = optimize(logical, tiny_star, array_agg=False)
        assert not physical.use_array_agg

    def test_explain_mentions_decisions(self, tiny_star):
        logical = bind("""
            SELECT d_year, sum(lo_revenue) FROM lineorder, date, customer
            WHERE c_region = 'ASIA' AND lo_discount <= 2
            GROUP BY d_year
        """, tiny_star)
        text = optimize(logical, tiny_star).explain()
        assert "root: lineorder" in text
        assert "predicate-vector" in text
        assert "aggregation: array" in text

    def test_estimated_groups_multi_axis(self, ssb_air):
        logical = bind("""
            SELECT c_nation, d_year, count(*) FROM lineorder, customer, date
            GROUP BY c_nation, d_year
        """, ssb_air)
        physical = optimize(logical, ssb_air)
        nations = len(set(ssb_air.table("customer")["c_nation"].values()))
        years = len(set(ssb_air.table("date")["d_year"].values()))
        assert physical.estimated_groups == nations * years

"""Portable bound plans, shared-memory arenas, and the process backend.

Pins the PR's three contracts:

* **plan portability** — a compiled :class:`BoundQuery` survives a pickle
  round-trip and executes identically;
* **cross-backend equivalence** — all 13 SSB queries return identical
  rows on the ``serial``, ``thread``, and ``process`` backends (A-Store
  and baselines alike);
* **arena hygiene** — attached databases are zero-copy and read-only,
  and no shared-memory segment survives engine close.
"""

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.core import ColumnArena, attach_database
from repro.core.column import StringColumn
from repro.engine import AStoreEngine, EngineOptions
from repro.engine.operators import BACKENDS, PredicateFilter
from repro.baselines import (
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
)
from repro.workloads import SSB_QUERIES

from .conftest import build_tiny_star

BACKEND_NAMES = ("serial", "thread", "process")


def shm_segments():
    """Names of live POSIX shared-memory segments (Linux)."""
    try:
        return [n for n in os.listdir("/dev/shm") if n.startswith("psm_")]
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


class TestColumnArena:
    def test_round_trip_all_layouts(self, tiny_star):
        # add a StringColumn so all four layouts are exercised
        names = StringColumn("d_label",
                             values=[f"day-{i}" for i in range(3)])
        tiny_star.table("date").add_column(names)
        with ColumnArena.export(tiny_star) as arena:
            with attach_database(arena.manifest) as attached:
                for tname, table in tiny_star.tables.items():
                    for cname in table.column_names:
                        assert np.array_equal(
                            table[cname].values(),
                            attached.db.table(tname)[cname].values()), (
                                tname, cname)
                assert len(attached.db.references) == len(tiny_star.references)

    def test_attached_arrays_are_zero_copy_views(self, tiny_star):
        with ColumnArena.export(tiny_star) as arena:
            with attach_database(arena.manifest) as attached:
                values = attached.db.table("lineorder")["lo_revenue"].values()
                assert not values.flags.owndata
                assert not values.flags.writeable

    def test_close_unlinks_segment(self, tiny_star):
        arena = ColumnArena.export(tiny_star)
        segment = arena.manifest.segment
        assert segment in ColumnArena.live_segments()
        arena.close()
        arena.close()  # idempotent
        assert segment not in ColumnArena.live_segments()
        assert segment not in shm_segments()

    def test_deletes_and_mvcc_vectors_travel(self, tiny_star_mvcc):
        tiny_star_mvcc.table("lineorder").delete([1, 5], version=3)
        with ColumnArena.export(tiny_star_mvcc) as arena:
            with attach_database(arena.manifest) as attached:
                table = attached.db.table("lineorder")
                assert table.has_deletes
                assert np.array_equal(
                    table.live_mask(),
                    tiny_star_mvcc.table("lineorder").live_mask())
                assert np.array_equal(
                    table.live_mask(snapshot=2),
                    tiny_star_mvcc.table("lineorder").live_mask(snapshot=2))


class TestBoundPlanPortability:
    def test_pickle_round_trip_executes_identically(self, ssb_air):
        engine = AStoreEngine(ssb_air)
        for qid in ("Q1.1", "Q3.2", "Q4.1"):
            bound = engine.compile(SSB_QUERIES[qid])
            clone = pickle.loads(pickle.dumps(bound))
            assert clone.variant == bound.variant
            assert [s.op for s in clone.specs] == [s.op for s in bound.specs]
            assert (engine.run_compiled(clone).rows()
                    == engine.query(SSB_QUERIES[qid]).rows())

    def test_row_variant_plan_round_trips(self, ssb_air):
        engine = AStoreEngine.variant(ssb_air, "AIRScan_R_P")
        bound = engine.compile(SSB_QUERIES["Q2.1"])
        clone = pickle.loads(pickle.dumps(bound))
        assert clone.scan == "row"
        assert (engine.run_compiled(clone).rows()
                == engine.query(SSB_QUERIES["Q2.1"]).rows())

    def test_predicate_filter_pickles_packed_only(self):
        mask = np.zeros(1000, dtype=bool)
        mask[::7] = True
        pf = PredicateFilter(mask)
        clone = pickle.loads(pickle.dumps(pf))
        positions = np.arange(1000, dtype=np.int64)
        assert np.array_equal(clone.probe(positions), pf.probe(positions))
        # the wire form carries the packed bitmap, not the bool array
        assert len(pickle.dumps(pf)) < mask.nbytes


@pytest.fixture(scope="module")
def process_engine(ssb_air):
    """One process-backed engine shared by the differential tests, so the
    arena export and worker spawns amortize across all 13 queries."""
    engine = AStoreEngine(
        ssb_air, EngineOptions(parallel_backend="process", workers=2))
    yield engine
    engine.close()


class TestCrossBackendDifferential:
    @pytest.mark.parametrize("query_id", list(SSB_QUERIES))
    def test_ssb_identical_across_backends(self, ssb_air, process_engine,
                                           query_id):
        sql = SSB_QUERIES[query_id]
        reference = AStoreEngine(
            ssb_air, EngineOptions(parallel_backend="serial",
                                   workers=2)).query(sql).rows()
        threaded = AStoreEngine(
            ssb_air, EngineOptions(parallel_backend="thread",
                                   workers=2)).query(sql).rows()
        sharded = process_engine.query(sql).rows()
        assert threaded == reference
        assert sharded == reference

    def test_projection_identical_across_backends(self, ssb_air,
                                                  process_engine):
        sql = ("SELECT lo_orderkey FROM lineorder WHERE lo_discount = 4 "
               "ORDER BY lo_orderkey LIMIT 100")
        reference = AStoreEngine(ssb_air).query(sql).rows()
        assert process_engine.query(sql).rows() == reference

    def test_worker_counts_agree(self, ssb_air):
        sql = SSB_QUERIES["Q4.2"]
        reference = AStoreEngine(ssb_air).query(sql).rows()
        for workers in (1, 3):
            with AStoreEngine(ssb_air, EngineOptions(
                    parallel_backend="process", workers=workers)) as engine:
                assert engine.query(sql).rows() == reference

    def test_baselines_identical_on_process_backend(self, ssb_raw):
        for cls in (MaterializingEngine, VectorizedPipelineEngine,
                    FusedEngine):
            reference = cls(ssb_raw)
            with cls(ssb_raw, backend="process", workers=2) as sharded:
                for qid in ("Q1.1", "Q2.2", "Q4.3"):
                    sql = SSB_QUERIES[qid]
                    assert (sharded.query(sql).rows()
                            == reference.query(sql).rows()), (cls.name, qid)

    def test_zz_no_leaked_segments_after_suite(self):
        # runs last in this class (alphabetical within-class ordering is
        # not guaranteed, but the module-scoped engine outlives it — so
        # only *its* segment may be live, and nothing else)
        live = ColumnArena.live_segments()
        assert len(live) <= 2  # process_engine + at most one baseline arena
        assert set(shm_segments()) <= set(live)


class TestProcessBackendSemantics:
    def test_mutation_invalidates_arena(self):
        db = build_tiny_star()
        sql = ("SELECT d_year, count(*) AS n FROM lineorder, date "
               "GROUP BY d_year ORDER BY d_year")
        with AStoreEngine(db, EngineOptions(parallel_backend="process",
                                            workers=2)) as engine:
            before = engine.query(sql).rows()
            db.table("lineorder").delete([0, 1, 2, 3])
            after = engine.query(sql).rows()
            assert after != before
            assert after == AStoreEngine(db).query(sql).rows()
            # inserts invalidate too (slot reuse keeps row count stable);
            # the db is airified, so FK values are array positions
            db.table("lineorder").insert({
                "lo_orderkey": [9], "lo_custkey": [0],
                "lo_orderdate": [0], "lo_revenue": [1000],
                "lo_discount": [0], "lo_quantity": [1]})
            assert (engine.query(sql).rows()
                    == AStoreEngine(db).query(sql).rows())

    def test_engines_share_one_backend_per_database(self, tiny_star):
        sql = "SELECT d_year, count(*) AS n FROM lineorder, date GROUP BY d_year"
        options = EngineOptions(parallel_backend="process", workers=2)
        with AStoreEngine(tiny_star, options) as first:
            with AStoreEngine(tiny_star, options) as second:
                first.query(sql)
                segments_after_first = set(ColumnArena.live_segments())
                second.query(sql)
                # the second engine reuses the first engine's arena/pool
                assert set(ColumnArena.live_segments()) == segments_after_first
                assert first._shard_backend is second._shard_backend
                segment = first._shard_backend.arena.manifest.segment
            # one holder closed: the shared backend stays alive
            assert segment in ColumnArena.live_segments()
            assert first.query(sql).rows()
        # last holder closed: segment released
        assert segment not in ColumnArena.live_segments()
        assert segment not in shm_segments()

    def test_snapshot_reads_through_process_backend(self):
        db = build_tiny_star(mvcc=True)
        db.table("lineorder").delete([0, 1], version=5)
        sql = ("SELECT d_year, sum(lo_revenue) AS r FROM lineorder, date "
               "GROUP BY d_year ORDER BY d_year")
        with AStoreEngine(db, EngineOptions(parallel_backend="process",
                                            workers=2)) as engine:
            ref = AStoreEngine(db)
            assert (engine.query(sql, snapshot=4).rows()
                    == ref.query(sql, snapshot=4).rows())
            assert (engine.query(sql, snapshot=5).rows()
                    == ref.query(sql, snapshot=5).rows())

    def test_engine_close_releases_segment(self, tiny_star):
        engine = AStoreEngine(tiny_star, EngineOptions(
            parallel_backend="process", workers=2))
        sql = "SELECT d_year, count(*) AS n FROM lineorder, date GROUP BY d_year"
        rows = engine.query(sql).rows()
        assert rows
        segment = engine._shard_backend.arena.manifest.segment
        engine.close()
        assert segment not in shm_segments()
        assert segment not in ColumnArena.live_segments()

    def test_backend_registry_kinds(self):
        assert BACKENDS["serial"].inline
        assert BACKENDS["thread"].inline
        assert not BACKENDS["process"].inline


class TestDatagenCrossProcessDeterminism:
    def test_identical_data_under_different_hash_seeds(self):
        script = (
            "from repro.datagen import generate_ssb\n"
            "import numpy as np, zlib\n"
            "db = generate_ssb(sf=0.002, seed=9)\n"
            "lo = db.table('lineorder')\n"
            "digest = 0\n"
            "for name in ('lo_revenue', 'lo_orderdate', 'lo_custkey'):\n"
            "    digest = zlib.crc32(np.ascontiguousarray("
            "lo[name].values()).tobytes(), digest)\n"
            "print(digest)\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        digests = set()
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [src_dir] + env.get("PYTHONPATH", "").split(os.pathsep))
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            digests.add(out.stdout.strip())
        assert len(digests) == 1

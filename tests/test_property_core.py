"""Property-based tests on core data-structure invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Bitmap, Dictionary, SelectionVector
from repro.engine.orderby import sort_indices
from repro.plan.binder import OrderKey

mask_strategy = st.lists(st.booleans(), min_size=0, max_size=400)


class TestBitmapProperties:
    @settings(max_examples=60, deadline=None)
    @given(mask=mask_strategy)
    def test_pack_unpack_roundtrip(self, mask):
        arr = np.array(mask, dtype=bool)
        assert np.array_equal(Bitmap.from_bool_array(arr).to_bool_array(), arr)

    @settings(max_examples=60, deadline=None)
    @given(mask=mask_strategy)
    def test_count_matches_sum(self, mask):
        arr = np.array(mask, dtype=bool)
        assert Bitmap.from_bool_array(arr).count() == int(arr.sum())

    @settings(max_examples=60, deadline=None)
    @given(a=mask_strategy, b=mask_strategy)
    def test_logical_ops_match_numpy(self, a, b):
        n = min(len(a), len(b))
        arr_a = np.array(a[:n], dtype=bool)
        arr_b = np.array(b[:n], dtype=bool)
        bm_a, bm_b = Bitmap.from_bool_array(arr_a), Bitmap.from_bool_array(arr_b)
        assert np.array_equal((bm_a & bm_b).to_bool_array(), arr_a & arr_b)
        assert np.array_equal((bm_a | bm_b).to_bool_array(), arr_a | arr_b)
        assert np.array_equal((~bm_a).to_bool_array(), ~arr_a)

    @settings(max_examples=60, deadline=None)
    @given(mask=mask_strategy, data=st.data())
    def test_probe_matches_unpacked(self, mask, data):
        arr = np.array(mask, dtype=bool)
        if len(arr) == 0:
            return
        positions = np.array(data.draw(st.lists(
            st.integers(min_value=0, max_value=len(arr) - 1),
            min_size=0, max_size=100)), dtype=np.int64)
        bm = Bitmap.from_bool_array(arr)
        assert np.array_equal(bm.test(positions), arr[positions])


class TestSelectionVectorProperties:
    @settings(max_examples=60, deadline=None)
    @given(mask=mask_strategy)
    def test_from_mask_positions_sorted_unique(self, mask):
        sv = SelectionVector.from_mask(np.array(mask, dtype=bool))
        positions = sv.positions
        assert np.all(np.diff(positions) > 0) if len(positions) > 1 else True
        assert len(sv) == sum(mask)

    @settings(max_examples=60, deadline=None)
    @given(mask=mask_strategy, data=st.data())
    def test_refine_composes_like_and(self, mask, data):
        arr = np.array(mask, dtype=bool)
        sv = SelectionVector.from_mask(arr)
        keep = np.array(data.draw(st.lists(
            st.booleans(), min_size=len(sv), max_size=len(sv))), dtype=bool)
        refined = sv.refine(keep)
        # refining equals AND-ing the masks
        full = arr.copy()
        full[sv.positions[~keep]] = False
        assert np.array_equal(refined.positions, np.flatnonzero(full))


class TestDictionaryProperties:
    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.text(max_size=8), min_size=0, max_size=200))
    def test_encode_decode_identity(self, values):
        d = Dictionary()
        codes = d.encode(values)
        assert list(d.decode(codes)) == values

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.text(max_size=8), min_size=0, max_size=200))
    def test_codes_bounded_by_cardinality(self, values):
        d = Dictionary()
        codes = d.encode(values)
        assert len(d) == len(set(values))
        if len(codes):
            assert codes.max() < len(d) and codes.min() >= 0


class TestSortProperties:
    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
           descending=st.booleans())
    def test_single_key_sort_matches_sorted(self, values, descending):
        columns = {"x": np.array(values, dtype=np.int64)}
        order = sort_indices(columns, [OrderKey("x", descending)])
        got = columns["x"][order].tolist()
        assert got == sorted(values, reverse=descending)

    @settings(max_examples=60, deadline=None)
    @given(rows=st.lists(st.tuples(st.integers(0, 5), st.integers(-50, 50)),
                         min_size=1, max_size=200))
    def test_two_key_sort_matches_python(self, rows):
        a = np.array([r[0] for r in rows], dtype=np.int64)
        b = np.array([r[1] for r in rows], dtype=np.int64)
        order = sort_indices({"a": a, "b": b},
                             [OrderKey("a", False), OrderKey("b", True)])
        got = [(int(a[i]), int(b[i])) for i in order]
        assert got == sorted(rows, key=lambda r: (r[0], -r[1]))

    @settings(max_examples=40, deadline=None)
    @given(rows=st.lists(
        st.tuples(st.sampled_from(["x", "y", "z"]), st.integers(0, 9)),
        min_size=1, max_size=120))
    def test_string_key_desc_matches_python(self, rows):
        names = np.empty(len(rows), dtype=object)
        names[:] = [r[0] for r in rows]
        nums = np.array([r[1] for r in rows], dtype=np.int64)
        order = sort_indices({"s": names, "n": nums},
                             [OrderKey("s", True), OrderKey("n", False)])
        got = [(names[i], int(nums[i])) for i in order]
        expected = sorted(rows, key=lambda r: r[1])
        expected = sorted(expected, key=lambda r: r[0], reverse=True)
        assert got == expected

"""Data skipping (zone maps), micro-adaptive ordering, and their bounds.

Pins the PR's contracts:

* pruning on/off is **result-identical** on all 13 SSB queries across
  the serial, thread, and process backends (and a row variant);
* a mutation after a zone-map build can never yield a wrong skip —
  inserts, updates, and deletes are visible immediately on every
  backend (stale-skip impossibility);
* fully-accepted blocks skip their filter chain without changing
  results; skipped-block counters surface in ``ExecutionStats``;
* micro-adaptive filter reordering never changes results, only order;
* the worker-side leaf path ships recipes instead of packed bits;
* the result serving tier honours its TTL and entry cap;
* the dense hash-aggregation fast path equals the sort-based one.
"""

import pickle

import numpy as np
import pytest

from repro.core.statistics import (
    ColumnZoneMap,
    StampedStore,
    build_column_zone_map,
    build_deletion_zone_map,
    default_zone_block_rows,
    zone_maps_for,
)
from repro.core.column import DictColumn, FixedColumn
from repro.core.types import DataType
from repro.engine import AStoreEngine, QueryCache, ReorderState
from repro.engine.aggregate import finalize, hash_aggregate
from repro.engine.operators import Filter, IntersectScan
from repro.engine.slice import RowRange
from repro.plan.binder import AggSpec
from repro.plan.expressions import (
    BoundColumn,
    BoundCompare,
    BoundLiteral,
    predicate_interval,
)
from repro.workloads import SSB_QUERIES

BACKENDS = ("serial", "thread", "process")


def fresh_engine(db, **overrides):
    overrides.setdefault("parallel_backend", "serial")
    return AStoreEngine.variant(db, "AIRScan_C_P_G", **overrides)


# -- zone map units -----------------------------------------------------------


class TestZoneMapBuild:
    def test_int_column_min_max(self):
        column = FixedColumn("v", DataType.INT64,
                             data=np.arange(10, dtype=np.int64))
        zm = build_column_zone_map(column, block_rows=4)
        assert zm.nblocks == 3
        assert zm.mins.tolist() == [0, 4, 8]
        assert zm.maxs.tolist() == [3, 7, 9]

    def test_float_nan_blocks_ignore_nans(self):
        data = np.array([1.0, np.nan, 3.0, np.nan], dtype=np.float64)
        zm = build_column_zone_map(FixedColumn("v", DataType.FLOAT64,
                                               data=data), block_rows=2)
        assert zm.mins[0] == 1.0 and zm.maxs[0] == 1.0
        assert zm.mins[1] == 3.0 and zm.maxs[1] == 3.0

    def test_dict_column_not_mappable(self):
        column = DictColumn("v", values=["a", "b", "a"])
        assert build_column_zone_map(column, block_rows=2) is None

    def test_deletion_summary(self, tiny_star):
        table = tiny_star.table("lineorder")
        table.delete([5])
        dzm = build_deletion_zone_map(table, block_rows=4)
        assert dzm.deleted_any.tolist() == [False, True]

    def test_default_block_rows_bounds(self):
        assert default_zone_block_rows(0) == 1024
        assert default_zone_block_rows(100) == 1024
        assert default_zone_block_rows(10_000_000) == 65536
        block = default_zone_block_rows(600_000)
        assert block & (block - 1) == 0  # power of two


class TestZoneMapStore:
    def test_lazy_build_and_reuse(self, tiny_star):
        store = StampedStore()
        zones = zone_maps_for(tiny_star, store=store, block_rows=4)
        a = zones.column("lineorder", "lo_quantity")
        b = zones.column("lineorder", "lo_quantity")
        assert isinstance(a, ColumnZoneMap) and a is b  # memoized

    def test_mutation_invalidates(self, tiny_star):
        store = StampedStore()
        zones = zone_maps_for(tiny_star, store=store, block_rows=4)
        before = zones.column("lineorder", "lo_quantity")
        assert before.maxs.max() == 40
        table = tiny_star.table("lineorder")
        table.update([0], {"lo_quantity": [99]})
        after = zones.column("lineorder", "lo_quantity")
        assert after is not before
        assert after.maxs.max() == 99

    def test_unprunable_column_cached_as_marker(self, tiny_star):
        store = StampedStore()
        zones = zone_maps_for(tiny_star, store=store, block_rows=4)
        assert zones.column("date", "d_month") is None
        assert zones.column("date", "d_month") is None  # marker hit


class TestPredicateInterval:
    COL = BoundColumn("lineorder", "lo_quantity")

    def test_comparisons(self):
        iv = predicate_interval(BoundCompare("<", self.COL, BoundLiteral(25)))
        assert (iv.lo, iv.hi, iv.exact) == (None, 25, False)
        iv = predicate_interval(BoundCompare(">=", self.COL, BoundLiteral(3)))
        assert (iv.lo, iv.hi, iv.exact) == (3, None, True)
        iv = predicate_interval(BoundCompare("=", self.COL, BoundLiteral(7)))
        assert (iv.lo, iv.hi, iv.exact) == (7, 7, True)

    def test_flipped_literal_side(self):
        iv = predicate_interval(BoundCompare("<", BoundLiteral(5), self.COL))
        assert (iv.lo, iv.hi, iv.exact) == (5, None, False)

    def test_non_prunable_forms(self):
        assert predicate_interval(
            BoundCompare("<>", self.COL, BoundLiteral(3))) is None
        assert predicate_interval(
            BoundCompare("<", self.COL, BoundColumn("lineorder",
                                                    "lo_discount"))) is None
        assert predicate_interval(
            BoundCompare("=", self.COL, BoundLiteral("x"))) is None


# -- differential: pruning on/off, all queries, all backends ------------------


@pytest.fixture(scope="module")
def reference_rows(ssb_air):
    """Unpruned serial rows for all 13 queries."""
    with fresh_engine(ssb_air, use_pruning=False, use_cache=False) as engine:
        return {qid: engine.query(sql).rows()
                for qid, sql in SSB_QUERIES.items()}


class TestPruningDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_queries_identical(self, ssb_air, reference_rows, backend):
        with fresh_engine(ssb_air, parallel_backend=backend,
                          workers=2 if backend != "serial" else 1,
                          use_cache=False) as engine:
            for qid, sql in SSB_QUERIES.items():
                assert engine.query(sql).rows() == reference_rows[qid], qid

    def test_row_variant_identical(self, ssb_air, reference_rows):
        with AStoreEngine.variant(ssb_air, "AIRScan_R_P",
                                  parallel_backend="serial",
                                  use_cache=False) as engine:
            rows = engine.query(SSB_QUERIES["Q1.1"]).rows()
        assert rows == reference_rows["Q1.1"]

    def test_selective_query_skips_blocks(self, ssb_air):
        with fresh_engine(ssb_air, use_cache=False) as engine:
            stats = engine.query(SSB_QUERIES["Q1.1"]).stats
        assert stats.morsels_skipped > 0

    def test_no_pruning_reports_nothing(self, ssb_air):
        with fresh_engine(ssb_air, use_pruning=False,
                          use_cache=False) as engine:
            stats = engine.query(SSB_QUERIES["Q1.1"]).stats
        assert stats.morsels_skipped == 0 and stats.morsels_accepted == 0

    def test_accept_blocks_skip_filters(self, ssb_air):
        # every lineorder row passes lo_quantity <= 50 and every date
        # passes d_year >= 1992: all blocks fully accept, results match
        sql = ("SELECT count(*) AS n FROM lineorder, date "
               "WHERE lo_orderdate = d_datekey AND d_year >= 1992 "
               "AND lo_quantity <= 50")
        with fresh_engine(ssb_air, use_cache=False) as engine:
            result = engine.query(sql)
        assert result.stats.morsels_accepted > 0
        assert result.stats.morsels_skipped == 0
        assert result.scalar() == ssb_air.table("lineorder").num_live


# -- freshness: a mutation can never leave a wrong skip -----------------------


NEEDLE_SQL = "SELECT count(*) AS n FROM lineorder WHERE lo_quantity > 1000"


def _template_row(table):
    return table.row(0)


class TestZoneMapFreshness:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_update_after_build_is_seen(self, backend):
        from repro.datagen import generate_ssb

        db = generate_ssb(sf=0.002, seed=23)
        workers = 2 if backend != "serial" else 1
        with fresh_engine(db, parallel_backend=backend,
                          workers=workers, use_cache=False) as engine:
            assert engine.query(NEEDLE_SQL).scalar() == 0  # builds maps
            table = db.table("lineorder")
            victim = table.num_rows - 1  # in the last (skipped) block
            table.update([victim], {"lo_quantity": [2000]})
            assert engine.query(NEEDLE_SQL).scalar() == 1
            table.update([victim], {"lo_quantity": [10]})
            assert engine.query(NEEDLE_SQL).scalar() == 0

    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_insert_and_delete_after_build(self, backend):
        from repro.datagen import generate_ssb

        db = generate_ssb(sf=0.002, seed=24)
        workers = 2 if backend != "serial" else 1
        with fresh_engine(db, parallel_backend=backend,
                          workers=workers, use_cache=False) as engine:
            assert engine.query(NEEDLE_SQL).scalar() == 0
            table = db.table("lineorder")
            row = _template_row(table)
            row["lo_quantity"] = 5000
            positions = table.insert({k: [v] for k, v in row.items()})
            assert engine.query(NEEDLE_SQL).scalar() == 1
            table.delete(positions)
            assert engine.query(NEEDLE_SQL).scalar() == 0

    def test_deletes_confined_to_skipped_blocks(self):
        # deletions living only in blocks the query skips anyway keep
        # the ranged fast path sound (the deletion zone map proves it)
        from repro.datagen import generate_ssb

        db = generate_ssb(sf=0.002, seed=26)
        table = db.table("lineorder")
        table.delete(np.arange(0, 32))  # early (1992) rows, block 0
        sql = ("SELECT sum(lo_revenue) AS r FROM lineorder, date "
               "WHERE lo_orderdate = d_datekey AND d_year = 1998")
        with fresh_engine(db, use_cache=False) as pruned, \
                fresh_engine(db, use_pruning=False, use_cache=False) as plain:
            result = pruned.query(sql)
            assert result.rows() == plain.query(sql).rows()
            assert result.stats.morsels_skipped > 0

    def test_pruning_with_deleted_rows_matches(self, ssb_air):
        # deletes make the base non-identity: the position-array prune
        # path must agree with the unpruned engine
        from repro.datagen import generate_ssb

        db = generate_ssb(sf=0.002, seed=25)
        table = db.table("lineorder")
        table.delete(np.arange(0, table.num_rows, 7))
        sql = SSB_QUERIES["Q1.1"]
        with fresh_engine(db, use_cache=False) as pruned, \
                fresh_engine(db, use_pruning=False, use_cache=False) as plain:
            assert pruned.query(sql).rows() == plain.query(sql).rows()


# -- micro-adaptive ordering --------------------------------------------------


class TestAdaptiveOrdering:
    def test_repeated_queries_deterministic(self, ssb_air, reference_rows):
        with fresh_engine(ssb_air, use_cache=True) as engine:
            for _ in range(25):
                assert (engine.query(SSB_QUERIES["Q3.1"]).rows()
                        == reference_rows["Q3.1"])

    def test_reorder_state_adapts_and_reexplores(self):
        state = ReorderState(explore_every=4)
        static = [0, 1]
        assert state.order(static) == [0, 1]  # first trip explores
        # step 1 passes almost nothing, step 0 passes everything
        state.record(0, 95, 100)
        state.record(1, 5, 100)
        assert state.order(static) == [1, 0]  # adapted
        assert state.reorders == 1
        state.order(static)
        state.order(static)
        assert state.order(static) == [0, 1]  # 5th trip: re-exploration

    def test_reorder_state_survives_pickle(self):
        state = ReorderState()
        state.record(0, 1, 2)
        clone = pickle.loads(pickle.dumps(state))
        clone.record(0, 1, 2)  # lock was rebuilt
        assert clone.passes[0] == 2

    def test_adaptive_intersect_scan_matches_plain(self, tiny_star):
        from repro.engine.sharding import BoundQuery  # noqa: F401 (import path)
        from repro.engine.slice import universal_provider
        from repro.engine.operators import Morsel
        from repro.plan.binder import bind

        logical = bind("SELECT count(*) AS n FROM lineorder "
                       "WHERE lo_quantity >= 15 AND lo_discount <= 3",
                       tiny_star)
        steps = [Filter(expr) for expr in logical.fact_conjuncts]

        def run(scan):
            morsel = Morsel(np.arange(8, dtype=np.int64), universal_provider(
                tiny_star, "lineorder", logical.paths,
                np.arange(8, dtype=np.int64)))
            return scan.process(morsel).positions.tolist()

        plain = run(IntersectScan(steps))
        state = ReorderState(explore_every=2)
        for _ in range(6):
            assert run(IntersectScan(steps, adapt=state)) == plain

    def test_filters_reordered_counter_surfaces(self, ssb_air):
        with fresh_engine(ssb_air, use_cache=True,
                          morsel_rows=2048) as engine:
            total = 0
            for _ in range(30):
                total += engine.query(
                    SSB_QUERIES["Q3.1"]).stats.filters_reordered
        assert total >= 0  # counter plumbed through (may be 0 if stable)


# -- worker-side leaf processing ----------------------------------------------


class TestWorkerSideLeaf:
    def test_big_filters_ship_as_recipes(self, ssb_air):
        with fresh_engine(ssb_air, leaf_ship_bytes=0,
                          use_cache=False) as engine:
            bound = engine.compile(SSB_QUERIES["Q2.1"])
            assert set(bound.leaf.lazy_specs) == {"part", "supplier"}
            clone = pickle.loads(pickle.dumps(bound))
            assert clone.leaf.filters == {}  # bits did not travel
            clone.hydrate(ssb_air)
            for dim, pf in bound.leaf.filters.items():
                assert np.isclose(clone.leaf.filters[dim].density, pf.density)

    def test_default_threshold_ships_bits(self, ssb_air):
        with fresh_engine(ssb_air, use_cache=False) as engine:
            bound = engine.compile(SSB_QUERIES["Q2.1"])
            assert bound.leaf.lazy_specs == {}

    def test_process_backend_with_lazy_leaf(self, ssb_air, reference_rows):
        with fresh_engine(ssb_air, parallel_backend="process", workers=2,
                          leaf_ship_bytes=0, use_cache=False) as engine:
            for qid in ("Q2.1", "Q3.1", "Q4.1"):
                assert (engine.query(SSB_QUERIES[qid]).rows()
                        == reference_rows[qid])


# -- bounded result tier ------------------------------------------------------


class TestResultTierBounds:
    def _cache(self, **kwargs):
        clock = {"now": 0.0}
        cache = QueryCache(clock=lambda: clock["now"], **kwargs)
        return cache, clock

    def test_ttl_expires_entries(self, tiny_star):
        cache, clock = self._cache(result_ttl_seconds=5.0)
        cache.put("result", ("k",), "value", (), 10)
        assert cache.get("result", ("k",), tiny_star) == "value"
        clock["now"] = 6.0
        assert cache.get("result", ("k",), tiny_star) is None
        assert cache.stats()["result"].expirations == 1

    def test_ttl_zero_never_expires(self, tiny_star):
        cache, clock = self._cache()
        cache.put("result", ("k",), "value", (), 10)
        clock["now"] = 1e9
        assert cache.get("result", ("k",), tiny_star) == "value"

    def test_entry_cap_evicts_lru(self, tiny_star):
        cache, _ = self._cache(max_result_entries=2)
        for i in range(3):
            cache.put("result", (i,), i, (), 1)
        assert cache.get("result", (0,), tiny_star) is None  # evicted
        assert cache.get("result", (2,), tiny_star) == 2
        # other tiers keep the global cap
        for i in range(3):
            cache.put("plan", (i,), i, (), 1)
        assert cache.get("plan", (0,), tiny_star) == 0

    def test_engine_options_configure_shared_cache(self, tiny_star):
        engine = AStoreEngine.variant(tiny_star, "AIRScan_C_P_G",
                                      result_ttl_seconds=9.0,
                                      result_cache_entries=7)
        assert engine.cache.result_ttl_seconds == 9.0
        assert engine.cache.max_result_entries == 7
        engine.close()


# -- dense hash aggregation ---------------------------------------------------


class TestHashAggregateDense:
    SPECS = (AggSpec("COUNT", None, "n"),
             AggSpec("SUM", BoundColumn("t", "v"), "s"),
             AggSpec("MIN", BoundColumn("t", "v"), "lo"),
             AggSpec("MAX", BoundColumn("t", "v"), "hi"))

    def _run(self, codes, values):
        state = hash_aggregate(self.SPECS,
                               {"s": values, "lo": values, "hi": values},
                               codes)
        ids, out = finalize(state)
        return ids.tolist(), {k: v.tolist() for k, v in out.items()}

    def test_dense_path_equals_sparse_reference(self):
        rng = np.random.default_rng(5)
        dense = rng.integers(10, 40, 500).astype(np.int64)
        values = rng.integers(0, 1000, 500).astype(np.float64)
        # widen the same codes so the unique-based path runs
        sparse = dense * 1_000_000
        ids_d, out_d = self._run(dense, values)
        ids_s, out_s = self._run(sparse, values)
        assert [i * 1_000_000 for i in ids_d] == ids_s
        assert out_d == out_s

    def test_dense_path_drops_empty_cells(self):
        codes = np.array([2, 2, 9], dtype=np.int64)
        ids, out = self._run(codes, codes.astype(np.float64))
        assert ids == [2, 9]
        assert out["n"] == [2, 1]

    def test_merge_across_paths(self):
        a = hash_aggregate(self.SPECS[:1], {},
                           np.array([1, 2, 2], dtype=np.int64))
        b = hash_aggregate(self.SPECS[:1], {},
                           np.array([2, 5_000_000], dtype=np.int64))
        ids, out = finalize(a.merge(b))
        assert ids.tolist() == [1, 2, 5_000_000]
        assert out["n"].tolist() == [1, 3, 1]


# -- RowRange provider --------------------------------------------------------


class TestRowRange:
    def test_take_and_len(self):
        rng = RowRange(10, 14)
        assert len(rng) == 4
        assert rng[np.array([0, 3])].tolist() == [10, 13]
        assert rng.as_positions().tolist() == [10, 11, 12, 13]

    def test_provider_serves_views(self, tiny_star):
        from repro.engine.slice import universal_provider
        from repro.plan.binder import bind

        logical = bind("SELECT sum(lo_revenue) AS r FROM lineorder",
                       tiny_star)
        ranged = universal_provider(tiny_star, "lineorder", logical.paths,
                                    RowRange(2, 6))
        gathered = universal_provider(tiny_star, "lineorder", logical.paths,
                                      np.arange(2, 6, dtype=np.int64))
        a = ranged.fetch("lineorder", "lo_revenue").decode()
        b = gathered.fetch("lineorder", "lo_revenue").decode()
        assert np.array_equal(a, b)
        assert a.base is not None  # a view, not a copy

"""Query-cache correctness: compile-once, serve-many, never stale.

Pins the PR's contracts:

* **cache on/off differential** — all 13 SSB queries return identical
  rows with caching disabled, with the compile tiers (plan/leaf/axis),
  and with the result serving tier, across the serial, thread, and
  process backends;
* **exact invalidation** — an insert/update/delete that bumps a table's
  ``mutation_count`` drops every cache tier derived from that table
  (and only those), so post-mutation queries match a cache-free engine;
* **hot-path hygiene** — scratch-buffer reuse and identity morsels
  never leak between queries or pipelines.
"""

import json

import numpy as np
import pytest

from repro.engine import AStoreEngine, EngineOptions
from repro.engine.cache import (
    QueryCache,
    parse_cached,
    query_cache_for,
    query_fingerprint,
    table_stamps,
)
from repro.engine.scratch import MAX_POOLED_ELEMENTS, ScratchPool, local_pool
from repro.workloads import SSB_QUERIES

from .conftest import build_tiny_star


def fresh_engine(db, **overrides):
    return AStoreEngine(db, EngineOptions(**overrides))


@pytest.fixture(scope="module")
def process_engine(ssb_air):
    """A process-backed engine with compile tiers on (results executed,
    not served, so the differential really exercises the shards)."""
    engine = AStoreEngine(ssb_air, EngineOptions(
        parallel_backend="process", workers=2))
    yield engine
    engine.close()


class TestCacheOnOffDifferential:
    @pytest.mark.parametrize("query_id", list(SSB_QUERIES))
    def test_all_backends_and_tiers_identical(self, ssb_air, process_engine,
                                              query_id):
        sql = SSB_QUERIES[query_id]
        reference = fresh_engine(ssb_air, use_cache=False).query(sql).rows()

        serving = fresh_engine(ssb_air, cache_results=True)
        assert serving.query(sql).rows() == reference     # fills the tiers
        served = serving.query(sql)
        assert served.rows() == reference                 # exact repeat
        assert served.stats.cache_events.get("result_hits") == 1

        threaded = fresh_engine(ssb_air, parallel_backend="thread",
                                workers=2)
        assert threaded.query(sql).rows() == reference    # warm plan tier
        assert process_engine.query(sql).rows() == reference
        assert process_engine.query(sql).rows() == reference  # warm repeat

    def test_served_result_through_process_backend(self, ssb_air):
        sql = SSB_QUERIES["Q4.1"]
        reference = fresh_engine(ssb_air, use_cache=False).query(sql).rows()
        with AStoreEngine(ssb_air, EngineOptions(
                parallel_backend="process", workers=2,
                cache_results=True)) as engine:
            assert engine.query(sql).rows() == reference
            warm = engine.query(sql)
            assert warm.rows() == reference
            assert warm.stats.cache_events.get("result_hits") == 1

    def test_leaf_tier_shared_across_query_family(self, ssb_air):
        """Q2.1/Q2.2/Q2.3 differ in their part predicate but share the
        supplier slice — the second family member reuses it."""
        engine = fresh_engine(ssb_air)
        q21 = engine.query(SSB_QUERIES["Q2.1"])
        q21_events = dict(q21.stats.cache_events)
        sql_sibling = SSB_QUERIES["Q2.1"].replace("MFGR#12", "MFGR#22")
        sibling = engine.query(sql_sibling)
        assert sibling.stats.cache_events.get("plan_misses") == 1
        assert sibling.stats.cache_events.get("leaf_hits", 0) >= 1
        assert q21_events.get("plan_misses", 0) <= 1


class TestFingerprinting:
    def test_whitespace_and_case_collapse(self, ssb_air):
        engine = fresh_engine(ssb_air)
        a = engine.compile("SELECT d_year, count(*) AS n "
                           "FROM lineorder, date GROUP BY d_year")
        b = engine.compile("select   d_year,\n count(*) AS n\n"
                           "from lineorder, date group by d_year")
        assert a is b  # same bound-plan object: the plan tier hit
        assert b.cache_events.get("plan_hits") == 1

    def test_variants_do_not_share_plans(self, ssb_air):
        sql = "SELECT d_year, count(*) AS n FROM lineorder, date GROUP BY d_year"
        column = AStoreEngine.variant(ssb_air, "AIRScan_C_P").compile(sql)
        row = AStoreEngine.variant(ssb_air, "AIRScan_R_P").compile(sql)
        assert column is not row
        assert row.scan == "row" and column.scan == "column"

    def test_fingerprint_is_deterministic(self):
        stmt = parse_cached("SELECT count(*) FROM lineorder")
        assert (query_fingerprint(stmt, "tok")
                == query_fingerprint(stmt, "tok"))
        assert (query_fingerprint(stmt, "tok")
                != query_fingerprint(stmt, "other"))

    def test_parse_memo_returns_same_statement(self):
        sql = "SELECT count(*) FROM lineorder"
        assert parse_cached(sql) is parse_cached(sql)

    def test_compiled_plan_with_cache_key_pickles(self, ssb_air):
        import pickle

        bound = fresh_engine(ssb_air).compile(SSB_QUERIES["Q1.1"])
        clone = pickle.loads(pickle.dumps(bound))
        assert clone.cache_key == bound.cache_key
        assert (fresh_engine(ssb_air).run_compiled(clone).rows()
                == fresh_engine(ssb_air, use_cache=False)
                .query(SSB_QUERIES["Q1.1"]).rows())


MUTATING_SQL = ("SELECT d_year, sum(lo_revenue) AS r "
                "FROM lineorder, customer, date "
                "WHERE c_region = 'ASIA' GROUP BY d_year ORDER BY d_year")


class TestMutationInvalidation:
    def check_against_uncached(self, db, engine, sql=MUTATING_SQL):
        cached = engine.query(sql)
        uncached = fresh_engine(db, use_cache=False).query(sql)
        assert cached.rows() == uncached.rows()
        return cached

    def test_update_invalidates_leaf_and_result(self):
        db = build_tiny_star()
        engine = fresh_engine(db, cache_results=True)
        before = engine.query(MUTATING_SQL).rows()
        assert (engine.query(MUTATING_SQL)
                .stats.cache_events.get("result_hits") == 1)
        # flip the FRANCE customer into ASIA: the supplier-side filter,
        # the plan, and the result must all drop
        db.table("customer").update([2], {"c_region": ["ASIA"]})
        after = self.check_against_uncached(db, engine)
        assert after.rows() != before
        assert after.stats.cache_events.get("result_hits") is None
        assert after.stats.cache_events.get("plan_misses") == 1

    def test_fact_insert_invalidates(self):
        db = build_tiny_star()
        engine = fresh_engine(db, cache_results=True)
        engine.query(MUTATING_SQL)
        engine.query(MUTATING_SQL)
        db.table("lineorder").insert({
            "lo_orderkey": [9], "lo_custkey": [0], "lo_orderdate": [0],
            "lo_revenue": [1000], "lo_discount": [0], "lo_quantity": [1]})
        self.check_against_uncached(db, engine)

    def test_fact_delete_invalidates(self):
        db = build_tiny_star()
        engine = fresh_engine(db, cache_results=True)
        engine.query(MUTATING_SQL)
        db.table("lineorder").delete([0, 4])
        self.check_against_uncached(db, engine)

    def test_dimension_insert_invalidates_axis(self):
        db = build_tiny_star()
        engine = fresh_engine(db, cache_results=True)
        engine.query(MUTATING_SQL)
        # a new date year extends the d_year axis domain
        db.table("date").insert({
            "d_datekey": [19990101], "d_year": [1999], "d_month": ["Jan"]})
        after = self.check_against_uncached(db, engine)
        assert after.stats.cache_events.get("axis_misses", 0) >= 1

    def test_unrelated_mutation_keeps_entries_warm(self):
        db = build_tiny_star()
        engine = fresh_engine(db, cache_results=True)
        date_only = ("SELECT d_year, count(*) AS n FROM lineorder, date "
                     "GROUP BY d_year ORDER BY d_year")
        engine.query(MUTATING_SQL)
        engine.query(date_only)
        # mutating customer must not evict the date-only artifacts...
        db.table("customer").update([0], {"c_region": ["ASIA"]})
        warm = engine.query(date_only)
        assert warm.stats.cache_events.get("result_hits") == 1
        # ...while the customer-touching query re-binds only its
        # customer-derived leaf product (the date axis stays warm)
        after = engine.query(MUTATING_SQL)
        assert after.stats.cache_events.get("plan_misses") == 1
        assert after.stats.cache_events.get("axis_hits", 0) >= 1

    def test_snapshot_keys_are_distinct_and_stable(self):
        db = build_tiny_star(mvcc=True)
        db.table("lineorder").delete([0, 1], version=5)
        sql = ("SELECT d_year, sum(lo_revenue) AS r FROM lineorder, date "
               "GROUP BY d_year ORDER BY d_year")
        engine = fresh_engine(db, cache_results=True)
        uncached = fresh_engine(db, use_cache=False)
        for snapshot in (4, 5, 4):
            assert (engine.query(sql, snapshot=snapshot).rows()
                    == uncached.query(sql, snapshot=snapshot).rows())
        warm = engine.query(sql, snapshot=4)
        assert warm.stats.cache_events.get("result_hits") == 1


class TestQueryCacheMechanics:
    def test_table_stamps_track_mutations(self, tiny_star):
        before = table_stamps(tiny_star, ("date", "lineorder"))
        tiny_star.table("lineorder").delete([0])
        after = table_stamps(tiny_star, ("date", "lineorder"))
        assert before != after
        assert dict(before)["date"] == dict(after)["date"]

    def test_lru_eviction_bounds_entries(self, tiny_star):
        cache = QueryCache(max_entries=2)
        stamps = table_stamps(tiny_star, ("date",))
        for i in range(5):
            cache.put("plan", ("k", i), i, stamps, nbytes=10)
        stats = cache.stats()["plan"]
        assert stats.entries == 2 and stats.evictions == 3
        assert cache.get("plan", ("k", 4), tiny_star) == 4
        assert cache.get("plan", ("k", 0), tiny_star) is None

    def test_result_tier_byte_budget(self, tiny_star):
        cache = QueryCache(result_budget_bytes=100,
                           max_result_entry_bytes=60)
        stamps = table_stamps(tiny_star, ("date",))
        assert not cache.put("result", ("big",), "x", stamps, nbytes=1000)
        assert cache.put("result", ("a",), "a", stamps, nbytes=50)
        assert cache.put("result", ("b",), "b", stamps, nbytes=60)
        stats = cache.stats()["result"]
        assert stats.bytes <= 100 or stats.entries == 1

    def test_stale_entry_counts_invalidation(self, ):
        db = build_tiny_star()
        cache = QueryCache()
        cache.put("leaf", ("k",), "v", table_stamps(db, ("date",)), 1)
        assert cache.get("leaf", ("k",), db) == "v"
        db.table("date").delete([0])
        assert cache.get("leaf", ("k",), db) is None
        assert cache.stats()["leaf"].invalidations == 1

    def test_hit_rates_window(self):
        before = {"plan.hits": 2, "plan.misses": 2}
        after = {"plan.hits": 8, "plan.misses": 4}
        rates = QueryCache.hit_rates(before, after)
        assert rates["plan"] == pytest.approx(0.75)
        assert "leaf" not in rates

    def test_one_cache_per_database_object(self, tiny_star, tiny_snowflake):
        assert query_cache_for(tiny_star) is query_cache_for(tiny_star)
        assert (query_cache_for(tiny_star)
                is not query_cache_for(tiny_snowflake))

    def test_stats_rows_shape(self, tiny_star):
        engine = fresh_engine(tiny_star)
        engine.query("SELECT count(*) AS n FROM lineorder")
        rows = engine.cache.stats_rows()
        assert [row[0] for row in rows] == [
            "plan", "leaf", "axis", "zone", "result"]


class TestScratchPool:
    def test_buffers_are_reused_and_grow(self):
        pool = ScratchPool()
        a = pool.bool_mask(100)
        b = pool.bool_mask(50)
        assert a.base is b.base  # same backing buffer
        big = pool.bool_mask(5000)
        assert big.base is not a.base and len(big) == 5000

    def test_oversize_requests_bypass_pool(self):
        pool = ScratchPool()
        huge = pool.take(MAX_POOLED_ELEMENTS + 1, np.bool_)
        assert huge.base is None  # owned, not pooled
        assert pool.nbytes == 0

    def test_slots_do_not_alias(self):
        pool = ScratchPool()
        a = pool.take(64, np.bool_, slot=0)
        b = pool.take(64, np.bool_, slot=1)
        a[:] = True
        b[:] = False
        assert a.all() and not b.any()

    def test_thread_local_pools_are_distinct(self):
        import threading

        pools = []

        def grab():
            pools.append(local_pool())

        thread = threading.Thread(target=grab)
        thread.start()
        thread.join()
        assert pools[0] is not local_pool()

    def test_projection_results_never_alias_storage(self):
        """An unfiltered whole-table projection must return owned
        arrays: identity morsels serve zero-copy *views* to operators,
        but a result that aliased live column storage would be
        rewritten under the caller by later in-place updates."""
        db = build_tiny_star()
        column = db.table("lineorder")["lo_revenue"]
        result = fresh_engine(db).query(
            "SELECT lo_revenue FROM lineorder")
        held = list(result.column("lo_revenue"))
        assert not np.shares_memory(result.column("lo_revenue"),
                                    column.values())
        db.table("lineorder").update([0], {"lo_revenue": [999]})
        assert list(result.column("lo_revenue")) == held

    def test_alternating_queries_do_not_corrupt(self, ssb_air):
        """Scratch reuse across interleaved queries and morsel sizes
        must never change results (the lifetime-discipline check)."""
        reference = {
            qid: fresh_engine(ssb_air, use_cache=False)
            .query(SSB_QUERIES[qid]).rows()
            for qid in ("Q1.1", "Q2.1", "Q3.1")
        }
        engine = fresh_engine(ssb_air, morsel_rows=4096,
                              parallel_backend="thread", workers=3)
        for _ in range(3):
            for qid, expected in reference.items():
                assert engine.query(SSB_QUERIES[qid]).rows() == expected


class TestQpsHarness:
    def test_qps_sweep_structure_and_differential(self, ssb_air, tmp_path):
        from repro.bench import qps_payload, qps_sweep, write_bench_json

        ids = ["Q1.1", "Q2.1"]
        times = qps_sweep(db=ssb_air, backends=("serial",),
                          worker_counts=(1,), query_ids=ids, rounds=2)
        assert set(times) == {("serial", 1, "cold"),
                              ("serial", 1, "compile"),
                              ("serial", 1, "serve")}
        serve = times[("serial", 1, "serve")]
        assert serve["qps"] > 0
        assert serve["hit_rates"].get("result") == 1.0
        assert set(serve["per_query_ms"]) == set(ids)

        path = tmp_path / "BENCH_qps_test.json"
        write_bench_json(str(path), "qps_sweep",
                         qps_payload(times, ids, repeat_rounds=2))
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1 and doc["benchmark"] == "qps_sweep"
        assert doc["host"]["cores"] >= 1
        modes = {cell["mode"] for cell in doc["cells"]}
        assert modes == {"cold", "compile", "serve"}

    def test_warm_leaf_seconds_near_zero(self, ssb_air):
        """The ``query --breakdown`` acceptance: a warm plan hit pays a
        lookup, not a recompile, in its leaf phase."""
        engine = fresh_engine(ssb_air)
        cold = engine.query(SSB_QUERIES["Q4.1"])
        warm = engine.query(SSB_QUERIES["Q4.1"])
        assert warm.stats.cache_events.get("plan_hits") == 1
        assert warm.stats.leaf_seconds <= max(cold.stats.leaf_seconds,
                                              1e-3)

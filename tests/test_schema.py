"""Unit tests for the catalog: references, join graph, airify, consolidation."""

import pytest

from repro.core import AIRColumn, Database
from repro.errors import SchemaError


def star_db():
    """A tiny star schema with key-valued FKs (pre-airify)."""
    db = Database("star")
    db.create_table("date", {
        "d_datekey": [19970101, 19970102, 19970103],
        "d_year": [1997, 1997, 1997],
    })
    db.create_table("customer", {
        "c_custkey": [101, 102],
        "c_region": ["ASIA", "AMERICA"],
    })
    db.create_table("lineorder", {
        "lo_orderdate": [19970103, 19970101, 19970101, 19970102],
        "lo_custkey": [102, 101, 102, 101],
        "lo_revenue": [10, 20, 30, 40],
    })
    db.add_reference("lineorder", "lo_orderdate", "date", "d_datekey")
    db.add_reference("lineorder", "lo_custkey", "customer", "c_custkey")
    return db


def snowflake_db():
    """lineitem -> orders -> customer -> nation -> region, pre-airified."""
    db = Database("snow")
    db.create_table("region", {"r_regionkey": [0, 1], "r_name": ["ASIA", "EUROPE"]})
    db.create_table("nation", {
        "n_nationkey": [0, 1, 2],
        "n_name": ["CHINA", "FRANCE", "JAPAN"],
        "n_regionkey": [0, 1, 0],
    })
    db.create_table("customer", {
        "c_custkey": [7, 8], "c_nationkey": [0, 2],
    })
    db.create_table("orders", {
        "o_orderkey": [70, 71, 72], "o_custkey": [7, 8, 7],
        "o_price": [100, 900, 500],
    })
    db.create_table("lineitem", {
        "l_orderkey": [70, 70, 71, 72],
        "l_extendedprice": [1.0, 2.0, 3.0, 4.0],
    })
    db.add_reference("nation", "n_regionkey", "region", "r_regionkey")
    db.add_reference("customer", "c_nationkey", "nation", "n_nationkey")
    db.add_reference("orders", "o_custkey", "customer", "c_custkey")
    db.add_reference("lineitem", "l_orderkey", "orders", "o_orderkey")
    return db


class TestDefinition:
    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", {"a": [1]})
        with pytest.raises(SchemaError):
            db.create_table("t", {"a": [1]})

    def test_reference_validation(self):
        db = star_db()
        with pytest.raises(SchemaError):
            db.add_reference("lineorder", "nope", "date", "d_datekey")
        with pytest.raises(SchemaError):
            db.add_reference("lineorder", "lo_revenue", "date", "nope")
        with pytest.raises(SchemaError):
            db.add_reference("ghost", "c", "date", "d_datekey")

    def test_reference_for(self):
        db = star_db()
        ref = db.reference_for("lineorder", "lo_custkey")
        assert ref is not None and ref.parent_table == "customer"
        assert db.reference_for("lineorder", "lo_revenue") is None


class TestJoinGraph:
    def test_star_root(self):
        assert star_db().roots() == ["lineorder"]

    def test_snowflake_root(self):
        assert snowflake_db().roots() == ["lineitem"]

    def test_star_paths(self):
        paths = star_db().reference_paths("lineorder")
        assert sorted(str(p) for p in paths) == [
            "lineorder -> customer",
            "lineorder -> date",
        ]

    def test_snowflake_paths_deepen(self):
        paths = snowflake_db().reference_paths("lineitem")
        assert [p.leaf for p in paths] == ["orders", "customer", "nation", "region"]
        assert str(paths[-1]) == "lineitem -> orders -> customer -> nation -> region"

    def test_restricted_paths(self):
        paths = snowflake_db().reference_paths(
            "lineitem", restrict_to={"orders", "customer"})
        assert [p.leaf for p in paths] == ["orders", "customer"]


class TestAirify:
    def test_star_airify_maps_keys_to_positions(self):
        db = star_db()
        db.airify()
        lo = db.table("lineorder")
        assert isinstance(lo["lo_orderdate"], AIRColumn)
        # 19970103 is at date position 2, 19970101 at 0, 19970102 at 1
        assert lo["lo_orderdate"].values().tolist() == [2, 0, 0, 1]
        assert lo["lo_custkey"].values().tolist() == [1, 0, 1, 0]

    def test_airify_idempotent(self):
        db = star_db()
        db.airify()
        before = db.table("lineorder")["lo_custkey"].values().tolist()
        db.airify()
        assert db.table("lineorder")["lo_custkey"].values().tolist() == before

    def test_airify_snowflake_chain(self):
        db = snowflake_db()
        db.airify()
        assert db.table("customer")["c_nationkey"].values().tolist() == [0, 2]
        assert db.table("orders")["o_custkey"].values().tolist() == [0, 1, 0]
        assert db.table("lineitem")["l_orderkey"].values().tolist() == [0, 0, 1, 2]

    def test_dangling_fk_rejected(self):
        db = Database()
        db.create_table("dim", {"k": [1, 2]})
        db.create_table("fact", {"fk": [1, 3]})
        db.add_reference("fact", "fk", "dim", "k")
        with pytest.raises(SchemaError):
            db.airify()

    def test_positional_reference_without_key(self):
        db = Database()
        db.create_table("dim", {"v": ["a", "b", "c"]})
        db.create_table("fact", {"fk": [2, 0]})
        db.add_reference("fact", "fk", "dim")  # already positional
        db.airify()
        assert isinstance(db.table("fact")["fk"], AIRColumn)

    def test_string_key_airify(self):
        db = Database()
        db.create_table("dim", {"code": [f"c{i}" for i in range(50)]})
        db.create_table("fact", {"fk": ["c7", "c0", "c49"]})
        db.add_reference("fact", "fk", "dim", "code")
        db.airify()
        assert db.table("fact")["fk"].values().tolist() == [7, 0, 49]


class TestConsolidateWithReferences:
    def test_air_rewrite(self):
        db = star_db()
        db.airify()
        customer = db.table("customer")
        # add a third customer then delete the first; lineorder refs move
        customer.insert({"c_custkey": [103], "c_region": ["EUROPE"]})
        lo = db.table("lineorder")
        lo.update([0, 2], {"lo_custkey": [2, 2]})  # repoint rows to customer 2
        lo.update([1, 3], {"lo_custkey": [1, 1]})
        customer.delete([0])
        db.consolidate("customer")
        assert customer.num_rows == 2
        # old position 1 -> 0, old 2 -> 1
        assert lo["lo_custkey"].values().tolist() == [1, 0, 1, 0]

    def test_consolidate_rejects_dangling(self):
        db = star_db()
        db.airify()
        db.table("customer").delete([0])  # customer 0 still referenced
        with pytest.raises(SchemaError):
            db.consolidate("customer")

    def test_footprint(self):
        assert star_db().nbytes > 0

"""Concurrency-correct serving: the async engine, the TCP server, and
the aliasing/race bugfixes this PR demonstrates under test.

Four contracts:

* **served-result isolation** — result-tier hits are frozen, per-caller
  copies: no caller can mutate what another caller (or the cache) sees;
* **scratch-lease isolation** — pipeline runs interleaving on one
  event-loop thread never alias a scratch buffer (the thread-local fast
  path stays for the sync backends);
* **backend lifecycle** — the shard-backend registry survives
  concurrent acquire/release racing mutations without double-closing or
  serving a closed pool, and mutate-while-querying is safe on every
  backend;
* **concurrent serving** — N async clients running the 13 SSB queries
  agree with serial ground truth, cancellation leaves the engine
  reusable, and adaptive-filter statistics stay coherent.
"""

import asyncio
import json
import sys
import threading
import time

import numpy as np
import pytest

from repro.engine import AStoreEngine, AsyncEngine, EngineOptions
from repro.engine import sharding
from repro.engine.scratch import ScratchPool, lease_pool, local_pool
from repro.engine.serve import serve_tcp
from repro.workloads import SSB_QUERIES

from .conftest import build_tiny_star

SQL_YEAR = ("SELECT d_year, sum(lo_revenue) AS revenue "
            "FROM lineorder, date GROUP BY d_year")


def fresh_engine(db, **overrides):
    overrides.setdefault("parallel_backend", "serial")
    return AStoreEngine.variant(db, "AIRScan_C_P_G", **overrides)


# -- bugfix 1: result-tier aliasing -------------------------------------------


class TestServedResultIsolation:
    def test_served_arrays_are_frozen(self):
        db = build_tiny_star()
        engine = fresh_engine(db, cache_results=True)
        ground = engine.query(SQL_YEAR).rows()
        served = engine.query(SQL_YEAR)  # result-tier hit
        assert served.stats.cache_events.get("result_hits") == 1
        with pytest.raises(ValueError):
            served.column("revenue")[0] = -1
        assert engine.query(SQL_YEAR).rows() == ground

    def test_first_caller_cannot_corrupt_tier_either(self):
        db = build_tiny_star()
        engine = fresh_engine(db, cache_results=True)
        first = engine.query(SQL_YEAR)  # the execution that fills the tier
        ground = first.rows()
        with pytest.raises(ValueError):
            first.column("revenue")[:] = 0
        assert engine.query(SQL_YEAR).rows() == ground

    def test_column_map_clobber_is_private(self):
        # replacing an entry of one served result's dict must not leak
        # into the cache or into other callers
        db = build_tiny_star()
        engine = fresh_engine(db, cache_results=True)
        ground = engine.query(SQL_YEAR).rows()
        a = engine.query(SQL_YEAR)
        b = engine.query(SQL_YEAR)
        a.columns["revenue"] = np.zeros(len(a), dtype=np.int64)
        assert b.rows() == ground
        assert engine.query(SQL_YEAR).rows() == ground

    def test_stats_object_is_not_shared_with_the_cache(self):
        # the first caller's stats must be private too: poisoning them
        # must not surface in later served hits
        db = build_tiny_star()
        engine = fresh_engine(db, cache_results=True)
        first = engine.query(SQL_YEAR)  # fills the tier
        first.stats.filter_modes["poison"] = "leak"
        first.stats.cache_events["poison"] = 1
        served = engine.query(SQL_YEAR)
        assert "poison" not in served.stats.filter_modes
        assert "poison" not in served.stats.cache_events

    def test_concurrent_callers_cannot_observe_mutations(self):
        db = build_tiny_star()

        async def main():
            async with AsyncEngine(db) as engine:
                ground = (await engine.query(SQL_YEAR)).rows()

                async def mutator():
                    result = await engine.query(SQL_YEAR)
                    result.columns["revenue"] = np.zeros(
                        len(result), dtype=np.int64)
                    with pytest.raises(ValueError):
                        result.columns["d_year"][0] = 0
                    return result

                async def reader():
                    await asyncio.sleep(0)
                    return await engine.query(SQL_YEAR)

                _, read = await asyncio.gather(mutator(), reader())
                assert read.rows() == ground

        asyncio.run(main())


# -- bugfix 2: scratch-pool leases --------------------------------------------


class TestScratchLeases:
    def test_interleaved_tasks_never_alias(self):
        # two pipeline runs interleaving on ONE event-loop thread: with
        # thread-keyed scratch they would hand out the same buffer; a
        # lease per run keeps them disjoint across awaits
        async def run(value, out):
            with lease_pool():
                mask = local_pool().bool_mask(512)
                mask.fill(value)
                await asyncio.sleep(0)  # another task runs here
                out.append(mask.copy())
                return mask

        async def main():
            kept_a, kept_b = [], []
            mask_a, mask_b = await asyncio.gather(
                run(True, kept_a), run(False, kept_b))
            assert not np.shares_memory(mask_a, mask_b)
            assert kept_a[0].all()
            assert not kept_b[0].any()

        asyncio.run(main())

    def test_lease_returns_pool_to_free_list(self):
        with lease_pool() as pool:
            first = pool.take(64, np.int64)
            first[:] = 7
        with lease_pool() as again:
            assert again is pool  # warm buffers reused, LIFO

    def test_nested_leases_restore_outer(self):
        with lease_pool() as outer:
            assert local_pool() is outer
            with lease_pool() as inner:
                assert local_pool() is inner
                assert inner is not outer
            assert local_pool() is outer

    def test_thread_local_fast_path_unchanged(self):
        # outside a lease, each thread keeps one stable pool
        assert local_pool() is local_pool()
        pools = []
        t = threading.Thread(target=lambda: pools.append(local_pool()))
        t.start()
        t.join()
        assert pools[0] is not local_pool()
        assert isinstance(pools[0], ScratchPool)


# -- bugfix 3: backend lifecycle races ----------------------------------------


class _StubBackend:
    """Stands in for ProcessShardBackend: same registry contract, no
    real pool — so the registry protocol can be hammered quickly."""

    instances = []

    def __init__(self, db, workers):
        self.workers = max(1, int(workers))
        self.stamp = sharding.database_stamp(db)
        self.refs = 0
        self._registry_key = None
        self.close_calls = 0
        self.closed_with_refs = None
        _StubBackend.instances.append(self)

    def is_stale(self, db):
        stale = sharding.database_stamp(db) != self.stamp
        time.sleep(0.0002)  # widen the check-then-act window
        return stale

    def retain(self):
        with sharding._REGISTRY_LOCK:
            self.refs += 1
        return self

    def close(self):
        self.close_calls += 1
        if self.close_calls == 1:
            self.closed_with_refs = self.refs

    @property
    def closed(self):
        return self.close_calls > 0


class TestBackendLifecycle:
    def test_concurrent_acquire_release_with_mutations(self, monkeypatch):
        """Stress the registry protocol: concurrent holders racing
        mutations must never be handed a closed backend, never close a
        backend twice, and never leak one."""
        monkeypatch.setattr(sharding, "ProcessShardBackend", _StubBackend)
        _StubBackend.instances = []
        db = build_tiny_star()
        table = db.table("lineorder")
        errors = []
        stop = threading.Event()
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            def holder():
                try:
                    for _ in range(150):
                        backend = sharding.acquire_shard_backend(db, 1)
                        if backend.closed:
                            errors.append("acquired a closed backend")
                        if backend.refs <= 0:
                            errors.append("acquired with refs <= 0")
                        time.sleep(0.0001)
                        sharding.release_shard_backend(backend)
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))

            def mutator():
                while not stop.is_set():
                    table.update([0], {"lo_quantity": [5]})
                    time.sleep(0.001)

            threads = [threading.Thread(target=holder) for _ in range(6)]
            mut = threading.Thread(target=mutator)
            mut.start()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stop.set()
            mut.join()
        finally:
            sys.setswitchinterval(old_interval)

        assert not errors, errors[:5]
        # drain: anything still registered is released by its holders
        # above, so every stub must be closed exactly once, with no refs
        leaked = [b for b in _StubBackend.instances if b.close_calls != 1]
        assert not leaked, (
            f"{len(leaked)} backends closed != once: "
            f"{[b.close_calls for b in leaked]}")
        early = [b for b in _StubBackend.instances
                 if b.closed_with_refs and b.closed_with_refs > 0]
        assert not early, "backend closed while references were live"
        assert all(b.refs == 0 for b in _StubBackend.instances)

    def test_release_is_idempotent(self, monkeypatch):
        monkeypatch.setattr(sharding, "ProcessShardBackend", _StubBackend)
        _StubBackend.instances = []
        db = build_tiny_star()
        backend = sharding.acquire_shard_backend(db, 1)
        sharding.release_shard_backend(backend)
        sharding.release_shard_backend(backend)  # no-op, not refs = -1
        assert backend.refs == 0
        assert backend.close_calls == 1

    def test_run_pin_outlives_engine_swap(self, monkeypatch):
        """A query mid-run keeps its checked-out backend open even when
        a concurrent query observes a mutation and swaps the engine onto
        a fresh export."""
        monkeypatch.setattr(sharding, "ProcessShardBackend", _StubBackend)
        _StubBackend.instances = []
        db = build_tiny_star()
        engine = fresh_engine(db, parallel_backend="process")
        first = engine._checkout_backend()      # query A starts its run
        db.table("lineorder").update([0], {"lo_quantity": [5]})
        second = engine._checkout_backend()     # query B re-exports
        assert second is not first
        assert not first.closed                 # A's pool still live
        sharding.release_shard_backend(first)   # A's run finishes
        assert first.closed
        sharding.release_shard_backend(second)
        engine.close()
        assert second.close_calls == 1

    @pytest.mark.parametrize("backend", ("serial", "thread", "process"))
    def test_mutate_while_querying_stress(self, backend):
        # in-place updates (no length change) racing queries: every
        # mutation bumps the table stamp, so this exercises cache
        # invalidation, zone-map rebuilds, and — on the process backend —
        # concurrent stale-eviction/re-export of the shared arena
        from repro.datagen import generate_ssb

        db = generate_ssb(sf=0.002, seed=31)
        table = db.table("lineorder")
        workers = 2 if backend != "serial" else 1
        errors = []
        with fresh_engine(db, parallel_backend=backend,
                          workers=workers) as engine:
            def reader():
                try:
                    for _ in range(6):
                        engine.query(SQL_YEAR)
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))

            def writer():
                try:
                    for round_no in range(4):
                        table.update([0, 1], {
                            "lo_quantity": [10 + round_no, 20 + round_no]})
                        time.sleep(0.01)
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))

            threads = [threading.Thread(target=reader) for _ in range(3)]
            threads.append(threading.Thread(target=writer))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors[:3]
            # settled state must agree with a fresh uncached engine
            with fresh_engine(db, use_cache=False) as probe:
                assert engine.query(SQL_YEAR).rows() == \
                    probe.query(SQL_YEAR).rows()


# -- concurrent serving -------------------------------------------------------


@pytest.fixture(scope="module")
def serving_db():
    from repro.datagen import generate_ssb

    return generate_ssb(sf=0.005, seed=7)


class TestAsyncServing:
    def test_concurrent_clients_match_serial_ground_truth(self, serving_db):
        with fresh_engine(serving_db, use_cache=False) as probe:
            ground = {qid: probe.query(sql).rows()
                      for qid, sql in SSB_QUERIES.items()}

        async def main():
            async with AsyncEngine(serving_db) as engine:
                ids = list(SSB_QUERIES)

                async def client(offset):
                    rows = {}
                    for i in range(len(ids)):
                        qid = ids[(i + offset) % len(ids)]
                        result = await engine.query(SSB_QUERIES[qid])
                        rows[qid] = result.rows()
                    return rows

                per_client = await asyncio.gather(
                    *(client(i) for i in range(8)))
                for rows in per_client:
                    for qid, got in rows.items():
                        assert got == ground[qid], qid
                assert engine.stats.peak_inflight > 1
                assert engine.stats.queries == 8 * len(ids)

        asyncio.run(main())

    def test_identical_cold_queries_coalesce(self, serving_db):
        from repro.engine import query_cache_for

        query_cache_for(serving_db).clear()  # make Q2.1 genuinely cold

        async def main():
            options = EngineOptions(parallel_backend="serial",
                                    cache_results=True)
            async with AsyncEngine(serving_db, options=options) as engine:
                sql = SSB_QUERIES["Q2.1"]
                results = await asyncio.gather(
                    *(engine.query(sql) for _ in range(16)))
                first = results[0].rows()
                assert all(r.rows() == first for r in results)
                # one leader executed; everyone else rode it or the tier
                assert engine.stats.executed == 1
                assert (engine.stats.coalesced
                        + engine.stats.served_on_loop) == 15

        asyncio.run(main())

    def test_cancellation_leaves_engine_reusable(self, serving_db):
        from repro.engine import query_cache_for

        query_cache_for(serving_db).clear()  # force a real execution

        async def main():
            async with AsyncEngine(serving_db) as engine:
                task = asyncio.create_task(
                    engine.query(SSB_QUERIES["Q3.1"]))
                await asyncio.sleep(0)  # let it get in flight
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                assert engine.stats.cancelled == 1
                # the engine (and any shard pool) must still serve
                result = await engine.query(SSB_QUERIES["Q3.1"])
                assert len(result) > 0
                return result.rows()

        rows = asyncio.run(main())
        with fresh_engine(serving_db, use_cache=False) as probe:
            assert rows == probe.query(SSB_QUERIES["Q3.1"]).rows()

    def test_reorder_stats_stay_coherent(self, serving_db):
        async def main():
            options = EngineOptions(parallel_backend="serial",
                                    cache_results=False, morsel_rows=512)
            async with AsyncEngine(serving_db, options=options) as engine:
                sql = SSB_QUERIES["Q2.1"]
                await asyncio.gather(*(engine.query(sql) for _ in range(8)))
                key = engine.engine.result_key(sql)
                bound = engine.engine.cache.get("plan", key, serving_db)
                assert bound is not None
                state = bound.reorder_state()
                assert len(state.passes) == len(state.rows)
                for passed, total in zip(state.passes, state.rows):
                    assert 0 <= passed <= total  # no torn accounting
                order = state.order(list(range(len(state.rows))))
                assert sorted(order) == list(range(len(state.rows)))

        asyncio.run(main())


class TestQueryServer:
    def test_three_concurrent_clients_and_clean_shutdown(self, serving_db):
        with fresh_engine(serving_db, use_cache=False) as probe:
            expected = probe.query(SQL_YEAR).rows()

        async def main():
            engine = AsyncEngine(serving_db)
            server = await serve_tcp(engine, "127.0.0.1", 0)
            host, port = server.address
            waiter = asyncio.create_task(server.wait_closed())

            async def client(i):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(json.dumps(
                    {"sql": SQL_YEAR, "id": i}).encode() + b"\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
                return response

            responses = await asyncio.gather(*(client(i) for i in range(3)))
            for i, response in enumerate(responses):
                assert response["id"] == i
                assert [tuple(row) for row in response["rows"]] == expected

            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"PING\n")
            await writer.drain()
            assert (await reader.readline()).strip() == b"PONG"
            writer.write(b"not even sql\n")
            await writer.drain()
            assert "error" in json.loads(await reader.readline())
            writer.write(b"SHUTDOWN\n")
            await writer.drain()
            assert json.loads(await reader.readline())["shutdown"] is True
            writer.close()
            await asyncio.wait_for(waiter, timeout=10)
            assert server.requests == 4  # 3 queries + 1 failed parse

        asyncio.run(main())

    def test_non_astore_errors_answer_instead_of_tearing_the_socket(
            self, serving_db):
        async def main():
            engine = AsyncEngine(serving_db)
            server = await serve_tcp(engine, "127.0.0.1", 0)
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            # JSON-valid but wrong-typed payload: not an AStoreError
            writer.write(b'{"sql": 123, "id": 9}\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["id"] == 9 and "error" in response
            # the connection survives and keeps serving
            writer.write(json.dumps({"sql": SQL_YEAR, "id": 10}).encode()
                         + b"\n")
            await writer.drain()
            assert json.loads(await reader.readline())["id"] == 10
            writer.close()
            await server.stop()

        asyncio.run(main())

    def test_shutdown_with_idle_client_still_terminates(self, serving_db):
        # Server.wait_closed blocks until every handler exits on
        # 3.12.1+; an idle client parked in readline() must not pin the
        # shutdown forever
        async def main():
            engine = AsyncEngine(serving_db)
            server = await serve_tcp(engine, "127.0.0.1", 0)
            host, port = server.address
            waiter = asyncio.create_task(server.wait_closed())
            _idle_reader, idle_writer = await asyncio.open_connection(
                host, port)  # connects, sends nothing
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"SHUTDOWN\n")
            await writer.drain()
            assert json.loads(await reader.readline())["shutdown"] is True
            await asyncio.wait_for(waiter, timeout=10)
            writer.close()
            idle_writer.close()

        asyncio.run(main())


class TestGracefulDrainAndAdmin:
    """PR contracts: stop() finishes in-flight requests before closing,
    STATS exposes the per-worker serving picture, and the update admin
    applies a mutation then answers with the new mutation count."""

    def test_stop_waits_for_inflight_request(self, serving_db):
        async def main():
            engine = AsyncEngine(serving_db)
            original = engine.query

            async def slow_query(sql, **kwargs):
                await asyncio.sleep(0.3)
                return await original(sql, **kwargs)

            engine.query = slow_query
            server = await serve_tcp(engine, "127.0.0.1", 0)
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({"sql": SQL_YEAR, "id": 1}).encode()
                         + b"\n")
            await writer.drain()
            await asyncio.sleep(0.05)  # the request is now in flight
            stop_task = asyncio.create_task(server.stop())
            # the drain must deliver the answer, not cut the socket
            response = json.loads(await asyncio.wait_for(
                reader.readline(), timeout=10))
            assert response["id"] == 1 and response["rows"]
            await asyncio.wait_for(stop_task, timeout=10)
            writer.close()

        asyncio.run(main())

    def test_stop_with_idle_connection_does_not_hang(self, serving_db):
        async def main():
            engine = AsyncEngine(serving_db)
            server = await serve_tcp(engine, "127.0.0.1", 0)
            host, port = server.address
            _reader, idle_writer = await asyncio.open_connection(host, port)
            await asyncio.sleep(0.05)  # connected, nothing in flight
            await asyncio.wait_for(server.stop(), timeout=10)
            idle_writer.close()

        asyncio.run(main())

    def test_stats_admin_reports_the_serving_picture(self, serving_db):
        import os

        async def main():
            engine = AsyncEngine(serving_db)
            server = await serve_tcp(engine, "127.0.0.1", 0)
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({"sql": SQL_YEAR, "id": 0}).encode()
                         + b"\n")
            await writer.drain()
            await reader.readline()
            writer.write(b"STATS\n")
            await writer.drain()
            payload = json.loads(await reader.readline())
            assert payload["pid"] == os.getpid()
            assert payload["requests"] >= 1
            assert "executed" in payload["serve"]
            assert set(payload["cache"]) >= {"plan", "result"}
            for tier in payload["cache"].values():
                assert {"hits", "misses", "shared_hits",
                        "shared_misses"} <= set(tier)
            writer.close()
            await server.stop()

        asyncio.run(main())

    def test_update_admin_applies_and_invalidates(self):
        db = build_tiny_star()

        async def main():
            engine = AsyncEngine(db)
            server = await serve_tcp(engine, "127.0.0.1", 0)
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)

            async def rpc(obj):
                writer.write(json.dumps(obj).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            before = (await rpc({"sql": SQL_YEAR, "id": 1}))["rows"]
            response = await rpc({"update": {
                "table": "lineorder", "positions": [0],
                "values": {"lo_revenue": [10_000]}}, "id": 2})
            assert response["ok"] and response["table"] == "lineorder"
            assert response["mutation_count"] \
                == db.table("lineorder").mutation_count
            after = (await rpc({"sql": SQL_YEAR, "id": 3}))["rows"]
            assert after != before  # the cached answer did not survive
            revenue = {year: value for year, value in after}
            assert revenue[1997] \
                == {y: v for y, v in before}[1997] + 10_000 - 10
            # malformed updates answer with an error, not a teardown
            bad = await rpc({"update": {"table": "nope", "positions": [0],
                                        "values": {"x": [1]}}, "id": 4})
            assert "error" in bad
            writer.close()
            await server.stop()

        asyncio.run(main())

"""The cross-process shared query store: protocol, lifecycle, and the
two-level :class:`~repro.engine.cache.QueryCache` integration.

Covered contracts:

* **roundtrip + freshness** — entries come back verbatim while their
  mutation stamps match the reader's database, and are dropped (and
  counted) the moment either the local count or a *published* broadcast
  count disagrees;
* **epoch flush** — the bump-allocated data heap restarts (generation
  bump) instead of failing when full, and oversized payloads are
  rejected outright;
* **lifecycle** — stale segments left by dead processes are swept while
  live ones survive, and the owner unlinks on close;
* **cross-process** — a spawned child sees the parent's entries and the
  parent sees the child's, through the same segment;
* **two-level cache** — a second engine process-alike (own QueryCache,
  same store) serves plan and result tiers from the store instead of
  recomputing, and a mutation broadcast invalidates fleet-wide.
"""

import multiprocessing
import os

import pytest

from repro.core.shmcache import (
    SEGMENT_PREFIX,
    SharedQueryStore,
    list_segments,
    store_available,
    sweep_stale_segments,
)

from .conftest import build_tiny_star

pytestmark = pytest.mark.skipif(
    not store_available(),
    reason="SharedQueryStore needs POSIX record locks (fcntl)")

SQL_YEAR = ("SELECT d_year, sum(lo_revenue) AS revenue "
            "FROM lineorder, date GROUP BY d_year")


def fresh_stamps(db, *names):
    return tuple((name, db.table(name).mutation_count)
                 for name in (names or db.tables))


@pytest.fixture
def store():
    store = SharedQueryStore.create(data_bytes=1 << 20)
    yield store
    store.close()


class TestStoreProtocol:
    def test_roundtrip(self, store):
        db = build_tiny_star()
        stamps = fresh_stamps(db, "lineorder", "date")
        assert store.put("q1", stamps, b"payload-bytes")
        got = store.get("q1", db)
        assert got is not None
        got_stamps, payload = got
        assert tuple(got_stamps) == stamps
        assert payload == b"payload-bytes"
        assert store.counters()["hits"] == 1
        assert store.counters()["entries"] == 1

    def test_miss_is_counted(self, store):
        db = build_tiny_star()
        assert store.get("absent", db) is None
        assert store.counters()["misses"] == 1

    def test_local_mutation_invalidates(self, store):
        db = build_tiny_star()
        store.put("q1", fresh_stamps(db, "lineorder"), b"x")
        db.table("lineorder").update([0], {"lo_revenue": [999]})
        assert store.get("q1", db) is None
        assert store.counters()["invalidations"] == 1
        # and the stale entry is gone, not just skipped
        assert store.counters()["entries"] == 0

    def test_published_stamp_rejects_stale_reader(self, store):
        # Worker A applies a mutation and broadcasts; worker B, whose
        # private copy still has the old count, must NOT accept an entry
        # stamped with its own (stale) count.
        db_a = build_tiny_star()
        db_b = build_tiny_star()
        store.put("q1", fresh_stamps(db_b, "lineorder"), b"stale-result")
        db_a.table("lineorder").update([0], {"lo_revenue": [999]})
        store.publish_stamps(db_a)
        assert (store.published_count("lineorder")
                == db_a.table("lineorder").mutation_count)
        assert store.get("q1", db_b) is None  # B's local count matches...
        assert store.counters()["invalidations"] == 1  # ...broadcast wins

    def test_publish_only_raises_counts(self, store):
        db = build_tiny_star()
        db.table("lineorder").update([0], {"lo_revenue": [1]})
        store.publish_stamps(db)
        published = store.published_count("lineorder")
        assert published == db.table("lineorder").mutation_count > 0
        fresh = build_tiny_star()  # pre-mutation counts again
        store.publish_stamps(fresh)  # replay of an older view
        assert store.published_count("lineorder") == published  # max-merge

    def test_epoch_flush_restarts_the_heap(self):
        store = SharedQueryStore.create(data_bytes=1 << 16)  # 64 KiB heap
        try:
            db = build_tiny_star()
            stamps = fresh_stamps(db, "lineorder")
            blob = os.urandom(20 << 10)  # 20 KiB per entry
            for i in range(8):  # > 3 entries overflows the heap
                assert store.put(f"q{i}", stamps, blob)
            counters = store.counters()
            assert counters["generation"] >= 1
            assert counters["evictions"] > 0
            # the newest entry survived the flush
            assert store.get("q7", db) is not None
        finally:
            store.close()

    def test_oversize_payload_rejected(self):
        store = SharedQueryStore.create(data_bytes=1 << 16,
                                        max_entry_bytes=1 << 10)
        try:
            db = build_tiny_star()
            assert not store.put("big", fresh_stamps(db), os.urandom(2 << 10))
            assert store.counters()["rejected"] == 1
            assert store.get("big", db) is None
        finally:
            store.close()

    def test_closed_store_raises(self, store):
        from repro.errors import StorageError

        store.close()
        with pytest.raises(StorageError):
            store.put("q", (), b"x")


class TestLifecycle:
    def test_owner_close_unlinks_segment(self):
        store = SharedQueryStore.create(data_bytes=1 << 16)
        segment = store.segment
        assert segment in list_segments()
        store.close()
        assert segment not in list_segments()

    def test_attacher_close_leaves_segment(self):
        store = SharedQueryStore.create(data_bytes=1 << 16)
        try:
            attached = SharedQueryStore.attach(store.segment)
            attached.close()
            assert store.segment in list_segments()
        finally:
            store.close()

    def test_sweep_skips_live_removes_stale(self):
        from multiprocessing import shared_memory as shm_mod
        from multiprocessing import resource_tracker

        live = SharedQueryStore.create(data_bytes=1 << 16)
        # a segment with no lock-file holder: what a SIGKILLed worker
        # fleet leaves behind (no process holds the liveness byte)
        stale_name = f"{SEGMENT_PREFIX}stale-{os.getpid():x}"
        stale = shm_mod.SharedMemory(create=True, name=stale_name,
                                     size=1 << 12)
        stale.close()
        # keep our own resource_tracker from double-unlinking it later
        resource_tracker.unregister(f"/{stale_name}", "shared_memory")
        try:
            removed = sweep_stale_segments()
            assert stale_name in removed
            assert live.segment in list_segments()
            assert stale_name not in list_segments()
        finally:
            live.close()


def _child_roundtrip(segment, conn):
    """Spawned child: read the parent's entry, store one of its own."""
    db = build_tiny_star()
    store = SharedQueryStore.attach(segment)
    got = store.get("from-parent", db)
    store.put("from-child", fresh_stamps(db, "lineorder"), b"child-payload")
    store.close()
    conn.send(got[1] if got is not None else None)
    conn.close()


class TestCrossProcess:
    def test_spawned_child_shares_entries(self):
        db = build_tiny_star()
        store = SharedQueryStore.create(data_bytes=1 << 20)
        try:
            store.put("from-parent", fresh_stamps(db, "lineorder"),
                      b"parent-payload")
            ctx = multiprocessing.get_context("spawn")
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_child_roundtrip,
                               args=(store.segment, child))
            proc.start()
            child.close()
            assert parent.recv() == b"parent-payload"
            proc.join(timeout=60)
            assert proc.exitcode == 0
            got = store.get("from-child", db)
            assert got is not None and got[1] == b"child-payload"
        finally:
            store.close()


class TestTwoLevelCache:
    """Two engines with private caches over one store: the fleet shape."""

    def _engine(self, db, store):
        from repro.engine import AStoreEngine

        engine = AStoreEngine.variant(db, "AIRScan_C_P_G",
                                      cache_results=True)
        engine.cache.attach_shared_store(
            SharedQueryStore.attach(store.segment))
        return engine

    def test_second_engine_hits_the_store(self):
        store = SharedQueryStore.create(data_bytes=1 << 20)
        try:
            db1, db2 = build_tiny_star(), build_tiny_star()
            e1 = self._engine(db1, store)
            ground = e1.query(SQL_YEAR).rows()

            e2 = self._engine(db2, store)
            served = e2.query(SQL_YEAR)
            assert served.rows() == ground
            counters = e2.cache.counters()
            assert counters["plan.shared_hits"] >= 1
            assert counters["result.shared_hits"] == 1
            # a shared result hit reports as a result-tier hit
            assert served.stats.cache_events.get("result_hits") == 1
        finally:
            store.close()

    def test_mutation_broadcast_invalidates_fleet_wide(self):
        store = SharedQueryStore.create(data_bytes=1 << 20)
        try:
            db1, db2 = build_tiny_star(), build_tiny_star()
            e1, e2 = self._engine(db1, store), self._engine(db2, store)
            e1.query(SQL_YEAR)
            e2.query(SQL_YEAR)  # served from the store

            # engine 1 applies + broadcasts; engine 2 must recompute
            db1.table("lineorder").update([0], {"lo_revenue": [10_000]})
            mutated = e1.query(SQL_YEAR).rows()
            store.publish_stamps(db1)
            db2.table("lineorder").update([0], {"lo_revenue": [10_000]})
            assert e2.query(SQL_YEAR).rows() == mutated
        finally:
            store.close()

    def test_shared_results_come_back_frozen(self):
        store = SharedQueryStore.create(data_bytes=1 << 20)
        try:
            db1, db2 = build_tiny_star(), build_tiny_star()
            self._engine(db1, store).query(SQL_YEAR)
            served = self._engine(db2, store).query(SQL_YEAR)
            with pytest.raises(ValueError):
                served.column("revenue")[0] = -1
        finally:
            store.close()

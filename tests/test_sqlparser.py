"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.errors import ParseError
from repro.sqlparser import (
    Aggregate,
    And,
    Between,
    BinaryOp,
    ColumnRef,
    Comparison,
    InList,
    Like,
    Literal,
    Not,
    Or,
    column_refs,
    has_aggregate,
    parse,
    tokenize,
    TokenType,
)


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_spelling(self):
        tokens = tokenize("Lo_Revenue")
        assert tokens[0].type == TokenType.IDENT
        assert tokens[0].value == "Lo_Revenue"

    def test_string_literal(self):
        tokens = tokenize("'ASIA'")
        assert tokens[0].type == TokenType.STRING
        assert tokens[0].value == "ASIA"

    def test_string_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [t.value for t in tokens[:2]] == ["42", "3.14"]

    def test_operators(self):
        values = [t.value for t in tokenize("a >= 1 and b <> 2 and c != 3")]
        assert ">=" in values
        assert values.count("<>") == 2  # != normalized to <>

    def test_comments_skipped(self):
        tokens = tokenize("select -- comment\n x from t")
        assert [t.value for t in tokens[:2]] == ["SELECT", "x"]

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("select @")

    def test_eof_token(self):
        assert tokenize("")[-1].type == TokenType.EOF


class TestParserBasics:
    def test_minimal(self):
        stmt = parse("SELECT a FROM t")
        assert stmt.tables == ("t",)
        assert stmt.items[0].expr == ColumnRef("a")

    def test_multiple_tables(self):
        stmt = parse("SELECT a FROM t1, t2, t3")
        assert stmt.tables == ("t1", "t2", "t3")

    def test_alias_with_as(self):
        stmt = parse("SELECT sum(x) AS total FROM t")
        assert stmt.items[0].alias == "total"

    def test_bare_alias(self):
        stmt = parse("SELECT sum(x) total FROM t")
        assert stmt.items[0].alias == "total"

    def test_qualified_column(self):
        stmt = parse("SELECT t.a FROM t")
        assert stmt.items[0].expr == ColumnRef("a", table="t")

    def test_count_star(self):
        stmt = parse("SELECT count(*) FROM t")
        agg = stmt.items[0].expr
        assert isinstance(agg, Aggregate) and agg.func == "COUNT" and agg.arg is None

    def test_count_empty_parens(self):
        # the paper writes count() in several queries
        agg = parse("SELECT count() FROM t").items[0].expr
        assert isinstance(agg, Aggregate) and agg.arg is None

    def test_group_order_limit(self):
        stmt = parse(
            "SELECT a, sum(b) FROM t GROUP BY a ORDER BY a ASC, sum(b) DESC LIMIT 10"
        )
        assert stmt.group_by == (ColumnRef("a"),)
        assert stmt.order_by[0].descending is False
        assert stmt.order_by[1].descending is True
        assert stmt.limit == 10

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t nonsense extra")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse("SELECT a")


class TestExpressions:
    def test_arithmetic_precedence(self):
        expr = parse("SELECT a + b * c FROM t").items[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_parenthesized(self):
        expr = parse("SELECT (a + b) * c FROM t").items[0].expr
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryOp) and expr.left.op == "+"

    def test_paper_q3_expression(self):
        expr = parse(
            "SELECT sum(l_extendedprice * (1 - l_discount)) FROM lineitem"
        ).items[0].expr
        assert isinstance(expr, Aggregate)
        inner = expr.arg
        assert isinstance(inner, BinaryOp) and inner.op == "*"
        assert isinstance(inner.right, BinaryOp) and inner.right.op == "-"

    def test_unary_minus_literal(self):
        expr = parse("SELECT a FROM t WHERE a > -5").where
        assert expr.right == Literal(-5)

    def test_where_and_flattening(self):
        where = parse(
            "SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3"
        ).where
        assert isinstance(where, And) and len(where.terms) == 3

    def test_or_precedence(self):
        where = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").where
        assert isinstance(where, Or)
        assert isinstance(where.terms[1], And)

    def test_not(self):
        where = parse("SELECT a FROM t WHERE NOT a = 1").where
        assert isinstance(where, Not)

    def test_between(self):
        where = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 3").where
        assert isinstance(where, Between)
        assert where.low == Literal(1) and where.high == Literal(3)

    def test_not_between(self):
        where = parse("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 3").where
        assert isinstance(where, Between) and where.negated

    def test_in_list(self):
        where = parse("SELECT a FROM t WHERE r IN ('x', 'y')").where
        assert isinstance(where, InList)
        assert [v.value for v in where.values] == ["x", "y"]

    def test_like(self):
        where = parse("SELECT a FROM t WHERE name LIKE 'MFGR#12%'").where
        assert isinstance(where, Like) and where.pattern == "MFGR#12%"

    def test_comparison_between_columns(self):
        where = parse("SELECT a FROM t, u WHERE t.fk = u.pk").where
        assert isinstance(where, Comparison)
        assert where.left == ColumnRef("fk", "t")
        assert where.right == ColumnRef("pk", "u")


class TestPaperQueries:
    def test_q1_from_paper(self):
        stmt = parse("""
            SELECT c_nation, s_nation, d_year, sum(lo_revenue) as revenue
            FROM customer, lineorder, supplier, date
            WHERE lo_custkey = c_custkey
              AND lo_suppkey = s_suppkey
              AND lo_orderdate = d_datekey
              AND c_region = 'ASIA' AND s_region = 'ASIA'
              AND d_year >= 1992 AND d_year <= 1997
            GROUP BY c_nation, s_nation, d_year
            ORDER BY d_year asc, revenue desc
        """)
        assert len(stmt.tables) == 4
        assert len(stmt.group_by) == 3
        assert stmt.order_by[1].expr == ColumnRef("revenue")
        assert isinstance(stmt.where, And) and len(stmt.where.terms) == 7

    def test_helpers(self):
        stmt = parse("SELECT sum(a + b) FROM t WHERE c = 1")
        assert has_aggregate(stmt.items[0].expr)
        refs = column_refs(stmt.items[0].expr)
        assert {r.name for r in refs} == {"a", "b"}

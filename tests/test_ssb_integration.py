"""Integration: all engines agree on every SSB query.

The A-Store variants run on AIR-loaded data, the baselines on key-valued
data, and the denormalized engine on the materialized universal table —
identical results across all of them validate the entire stack end to end.
"""

import pytest

from repro.baselines import (
    DenormalizedEngine,
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
    materialize_universal,
)
from repro.engine import AStoreEngine, EngineOptions, VARIANTS
from repro.workloads import SSB_QUERIES, star_join_query, validate_queries

QUERY_IDS = list(SSB_QUERIES)


@pytest.fixture(scope="module")
def reference_results(ssb_air):
    engine = AStoreEngine(ssb_air)
    return {qid: engine.query(SSB_QUERIES[qid]).rows() for qid in QUERY_IDS}


class TestBindability:
    def test_all_queries_bind(self, ssb_air):
        validate_queries(ssb_air)

    def test_all_queries_bind_raw(self, ssb_raw):
        validate_queries(ssb_raw)


class TestVariantAgreement:
    @pytest.mark.parametrize("variant", list(VARIANTS))
    def test_variant_matches_reference(self, ssb_air, reference_results,
                                       variant):
        engine = AStoreEngine.variant(ssb_air, variant)
        for qid in QUERY_IDS:
            assert engine.query(SSB_QUERIES[qid]).rows() == \
                reference_results[qid], qid

    def test_parallel_matches_reference(self, ssb_air, reference_results):
        engine = AStoreEngine(ssb_air, EngineOptions(workers=4))
        for qid in QUERY_IDS:
            assert engine.query(SSB_QUERIES[qid]).rows() == \
                reference_results[qid], qid


class TestBaselineAgreement:
    @pytest.mark.parametrize("engine_cls", [
        MaterializingEngine, FusedEngine, VectorizedPipelineEngine,
    ])
    def test_baseline_matches_reference(self, ssb_raw, reference_results,
                                        engine_cls):
        engine = engine_cls(ssb_raw)
        for qid in QUERY_IDS:
            assert engine.query(SSB_QUERIES[qid]).rows() == \
                reference_results[qid], qid

    def test_denormalized_matches_reference(self, ssb_air, reference_results):
        engine = DenormalizedEngine(ssb_air)
        for qid in QUERY_IDS:
            assert engine.query(SSB_QUERIES[qid]).rows() == \
                reference_results[qid], qid


class TestStarJoinForms:
    def test_star_join_counts_agree(self, ssb_air, ssb_raw):
        astore = AStoreEngine(ssb_air)
        fused = FusedEngine(ssb_raw)
        for qid in QUERY_IDS:
            stmt = star_join_query(qid)
            assert astore.query(stmt).scalar() == fused.query(stmt).scalar(), qid

    def test_star_join_counts_leq_fact_rows(self, ssb_air):
        astore = AStoreEngine(ssb_air)
        nrows = ssb_air.table("lineorder").num_rows
        for qid in QUERY_IDS:
            n = astore.query(star_join_query(qid)).scalar()
            assert 0 <= n <= nrows


class TestUniversalTable:
    def test_footprint_blowup(self, ssb_air):
        wide = materialize_universal(ssb_air)
        assert wide.nbytes > ssb_air.nbytes  # denormalization costs memory

    def test_universal_row_count(self, ssb_air):
        wide = materialize_universal(ssb_air)
        assert (wide.table("universal").num_rows
                == ssb_air.table("lineorder").num_rows)

    def test_universal_carries_dim_attributes(self, ssb_air):
        wide = materialize_universal(ssb_air)
        universal = wide.table("universal")
        for col in ("d_year", "c_region", "s_city", "p_brand1",
                    "lo_revenue"):
            assert col in universal

    def test_no_air_columns_in_universal(self, ssb_air):
        from repro.core import AIRColumn

        wide = materialize_universal(ssb_air)
        for col in wide.table("universal").columns.values():
            assert not isinstance(col, AIRColumn)


class TestSelectivityShape:
    """The SSB queries keep their characteristic selectivities."""

    def test_q1_selectivities_descend(self, ssb_air):
        engine = AStoreEngine(ssb_air)
        fractions = []
        for qid in ("Q1.1", "Q1.2", "Q1.3"):
            stats = engine.query(SSB_QUERIES[qid]).stats
            fractions.append(stats.selectivity)
        # Q1.1 ~1.9%, Q1.2 ~0.065%, Q1.3 ~0.0075% in the official spec
        assert fractions[0] > fractions[1] > fractions[2]

    def test_flight_queries_nonempty(self, reference_results):
        # the broad queries must produce rows even at test scale; the
        # city-level queries (Q3.2-Q3.4) can be legitimately empty when
        # the sampled suppliers miss the one US city they filter on
        for qid in ("Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q3.1",
                    "Q4.1", "Q4.2"):
            assert len(reference_results[qid]) >= 1, qid

"""Tests for statistics collection and referential-integrity validation."""

import numpy as np
import pytest

from repro.core import (
    AIRColumn,
    Database,
    assert_consistent,
    collect_statistics,
    statistics_for,
    validate_references,
)
from repro.errors import SchemaError

from .conftest import build_tiny_star


class TestCollect:
    def test_dict_column_exact(self, tiny_star):
        stats = collect_statistics(tiny_star)
        c_region = stats["customer"].columns["c_region"]
        assert c_region.distinct == 3
        assert not c_region.is_estimate

    def test_numeric_min_max(self, tiny_star):
        stats = collect_statistics(tiny_star)
        rev = stats["lineorder"].columns["lo_revenue"]
        assert rev.minimum == 10 and rev.maximum == 80
        assert rev.distinct == 8

    def test_density(self, tiny_star):
        stats = collect_statistics(tiny_star)
        disc = stats["lineorder"].columns["lo_discount"]
        assert disc.distinct == 4
        assert disc.density == 2.0

    def test_attached_to_database(self, tiny_star):
        collect_statistics(tiny_star)
        assert statistics_for(tiny_star, "date", "d_year").distinct == 2
        assert statistics_for(tiny_star, "date", "missing") is None

    def test_not_collected_returns_none(self):
        db = build_tiny_star()
        assert statistics_for(db, "date", "d_year") is None

    def test_sampling_flags_estimate(self):
        db = Database("big")
        db.create_table("t", {"x": np.arange(5000)})
        stats = collect_statistics(db, sample_rows=100)
        assert stats["t"].columns["x"].is_estimate

    def test_optimizer_uses_collected_stats(self, tiny_star):
        from repro.plan import bind, optimize

        collect_statistics(tiny_star)
        logical = bind("SELECT d_year, count(*) FROM lineorder, date "
                       "GROUP BY d_year", tiny_star)
        physical = optimize(logical, tiny_star)
        assert physical.estimated_groups == 2


class TestValidate:
    def test_consistent_database(self, tiny_star):
        assert validate_references(tiny_star) == []
        assert_consistent(tiny_star)  # must not raise

    def test_not_airified_reported(self):
        db = Database("raw")
        db.create_table("dim", {"k": [1, 2]})
        db.create_table("fact", {"fk": [1, 2]})
        db.add_reference("fact", "fk", "dim", "k")
        problems = validate_references(db)
        assert len(problems) == 1 and "not AIR-loaded" in problems[0]

    def test_out_of_range_detected(self, tiny_star):
        lo = tiny_star.table("lineorder")
        lo.replace_column("lo_custkey", AIRColumn(
            "lo_custkey", "customer",
            data=np.array([0, 1, 2, 3, 0, 1, 2, 99])))
        problems = validate_references(tiny_star)
        assert any("out of range" in p for p in problems)
        with pytest.raises(SchemaError):
            assert_consistent(tiny_star)

    def test_dangling_to_deleted_parent(self, tiny_star):
        tiny_star.table("customer").delete([0])
        problems = validate_references(tiny_star)
        assert any("deleted parent" in p for p in problems)

    def test_deleted_child_rows_ignored(self, tiny_star):
        # delete the fact rows pointing at customer 0, then customer 0:
        # stale references on *deleted* child rows are not a violation
        lo = tiny_star.table("lineorder")
        refs = lo["lo_custkey"].values()
        lo.delete(np.flatnonzero(refs == 0))
        tiny_star.table("customer").delete([0])
        assert validate_references(tiny_star) == []

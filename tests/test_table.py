"""Unit tests for the array-family Table: inserts, lazy deletes, slot
reuse, in-place updates, MVCC visibility, and consolidation."""

import numpy as np
import pytest

from repro.core import Table
from repro.errors import SchemaError, StorageError


def make_table(**kwargs):
    return Table.from_arrays(
        "t",
        {"k": [10, 20, 30, 40], "v": [1.0, 2.0, 3.0, 4.0],
         "tag": ["a", "b", "a", "b"]},
        **kwargs,
    )


class TestConstruction:
    def test_shape(self):
        t = make_table()
        assert t.num_rows == 4
        assert t.num_live == 4
        assert set(t.column_names) == {"k", "v", "tag"}

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_arrays("t", {"a": [1, 2], "b": [1]})

    def test_getitem_unknown_column(self):
        with pytest.raises(SchemaError):
            make_table()["nope"]

    def test_row_access(self):
        t = make_table()
        assert t.row(1) == {"k": 20, "v": 2.0, "tag": "b"}

    def test_gather(self):
        t = make_table()
        out = t.gather(np.array([3, 0]), columns=["k"])
        assert out["k"].tolist() == [40, 10]


class TestInsert:
    def test_append(self):
        t = make_table()
        pos = t.insert({"k": [50], "v": [5.0], "tag": ["c"]})
        assert pos.tolist() == [4]
        assert t.num_rows == 5
        assert t.row(4) == {"k": 50, "v": 5.0, "tag": "c"}

    def test_missing_column_rejected(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.insert({"k": [1]})

    def test_uneven_lengths_rejected(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.insert({"k": [1, 2], "v": [1.0], "tag": ["a", "b"]})

    def test_empty_insert(self):
        t = make_table()
        assert len(t.insert({"k": [], "v": [], "tag": []})) == 0

    def test_slot_reuse(self):
        t = make_table()
        t.delete([1])
        pos = t.insert({"k": [99], "v": [9.9], "tag": ["z"]})
        # the deleted slot is reused: no physical growth
        assert pos.tolist() == [1]
        assert t.num_rows == 4
        assert t.row(1) == {"k": 99, "v": 9.9, "tag": "z"}

    def test_reuse_then_append(self):
        t = make_table()
        t.delete([0])
        pos = t.insert({"k": [7, 8], "v": [0.7, 0.8], "tag": ["x", "y"]})
        assert pos.tolist() == [0, 4]
        assert t.num_live == 5


class TestDelete:
    def test_lazy_delete(self):
        t = make_table()
        assert t.delete([0, 2]) == 2
        assert t.num_rows == 4  # physical rows unchanged (lazy)
        assert t.num_live == 2
        assert t.live_mask().tolist() == [False, True, False, True]

    def test_deletion_vector(self):
        t = make_table()
        t.delete([3])
        assert t.deletion_vector().to_indices().tolist() == [3]

    def test_idempotent(self):
        t = make_table()
        assert t.delete([1]) == 1
        assert t.delete([1]) == 0
        assert t.num_live == 3

    def test_out_of_range(self):
        with pytest.raises(StorageError):
            make_table().delete([9])


class TestUpdate:
    def test_in_place(self):
        t = make_table()
        t.update([2], {"v": [33.0]})
        assert t.row(2)["v"] == 33.0
        assert t.num_rows == 4

    def test_update_deleted_rejected(self):
        t = make_table()
        t.delete([2])
        with pytest.raises(StorageError):
            t.update([2], {"v": [0.0]})

    def test_varchar_in_place(self):
        t = Table.from_arrays("s", {"name": [f"n{i}" for i in range(100)]})
        t.update([5], {"name": ["replacement"]})
        assert t.row(5)["name"] == "replacement"


class TestConsolidate:
    def test_compacts_and_maps(self):
        t = make_table()
        t.delete([1])
        mapping = t.consolidate()
        assert mapping.tolist() == [0, -1, 1, 2]
        assert t.num_rows == 3
        assert t.num_live == 3
        assert t["k"].values().tolist() == [10, 30, 40]

    def test_clears_free_slots(self):
        t = make_table()
        t.delete([0])
        t.consolidate()
        pos = t.insert({"k": [5], "v": [0.5], "tag": ["q"]})
        assert pos.tolist() == [3]  # append, nothing to reuse

    def test_noop_when_no_deletes(self):
        t = make_table()
        mapping = t.consolidate()
        assert mapping.tolist() == [0, 1, 2, 3]


class TestMVCC:
    def test_snapshot_visibility(self):
        t = make_table(mvcc=True)
        t.insert({"k": [50], "v": [5.0], "tag": ["c"]}, version=10)
        t.delete([0], version=20)

        # snapshot before everything: only the 4 original rows
        assert t.live_mask(snapshot=5).tolist() == [True] * 4 + [False]
        # snapshot after insert, before delete
        assert t.live_mask(snapshot=15).tolist() == [True] * 5
        # snapshot after delete
        assert t.live_mask(snapshot=25).tolist() == [False] + [True] * 4

    def test_snapshot_requires_mvcc(self):
        with pytest.raises(StorageError):
            make_table().live_mask(snapshot=1)

    def test_reused_slot_gets_new_versions(self):
        t = make_table(mvcc=True)
        t.delete([1], version=10)
        t.insert({"k": [99], "v": [9.0], "tag": ["z"]}, version=20)
        # at snapshot 15 the slot is invisible (deleted, not yet reinserted)
        assert not t.live_mask(snapshot=15)[1]
        assert t.live_mask(snapshot=25)[1]


class TestFootprint:
    def test_nbytes_positive_and_tracks_growth(self):
        t = make_table()
        before = t.nbytes
        t.insert({"k": list(range(1000)), "v": [0.0] * 1000, "tag": ["a"] * 1000})
        assert t.nbytes > before

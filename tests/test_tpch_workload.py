"""Tests for the TPC-H adapted queries and the pipelining primitive."""

import pytest

from repro.baselines import FusedEngine
from repro.core import Database
from repro.datagen import generate_tpch
from repro.engine import AStoreEngine, materialize, result_to_table
from repro.workloads import TPCH_QUERIES


@pytest.fixture(scope="module")
def tpch_raw():
    return generate_tpch(sf=0.004, seed=11, airify=False)


class TestTPCHQueries:
    def test_all_bind_and_run(self, tpch_air):
        engine = AStoreEngine(tpch_air)
        for query_id, sql in TPCH_QUERIES.items():
            result = engine.query(sql)
            assert result.stats.total_seconds > 0, query_id

    @pytest.mark.parametrize("query_id", list(TPCH_QUERIES))
    def test_astore_matches_baseline(self, tpch_air, tpch_raw, query_id):
        sql = TPCH_QUERIES[query_id]
        a = AStoreEngine(tpch_air).query(sql).rows()
        b = FusedEngine(tpch_raw).query(sql).rows()
        assert a == b

    def test_q1_like_shape(self, tpch_air):
        result = AStoreEngine(tpch_air).query(TPCH_QUERIES["Q1-like"])
        quantities = [row["l_quantity"] for row in result.to_dicts()]
        assert quantities == sorted(quantities)
        assert max(quantities) <= 25

    def test_q3_adapted_uses_snowflake_chain(self, tpch_air):
        plan = AStoreEngine(tpch_air).plan(TPCH_QUERIES["Q3-adapted"])
        assert plan.logical.root == "lineitem"
        # region + o_price predicates fold onto the orders path
        assert [d.first_dim for d in plan.dim_decisions] == ["orders"]

    def test_q6_like_is_fact_only(self, tpch_air):
        plan = AStoreEngine(tpch_air).plan(TPCH_QUERIES["Q6-like"])
        assert plan.dim_decisions == ()
        assert len(plan.fact_conjuncts) == 2


class TestPipelining:
    def test_result_to_table(self, tiny_star):
        result = AStoreEngine(tiny_star).query(
            "SELECT c_nation, sum(lo_revenue) AS revenue "
            "FROM lineorder, customer GROUP BY c_nation ORDER BY c_nation")
        table = result_to_table(result, "by_nation")
        assert table.num_rows == 4
        assert table["revenue"].values().tolist() == [120, 60, 100, 80]

    def test_materialize_then_requery(self, tiny_star):
        """Two-stage (pipelined) processing of a nested aggregate:
        average per-nation revenue of the per-nation totals."""
        engine = AStoreEngine(tiny_star)
        staged = materialize(
            engine,
            "SELECT c_nation, sum(lo_revenue) AS revenue "
            "FROM lineorder, customer GROUP BY c_nation",
            "by_nation")
        second = AStoreEngine(staged)
        result = second.query(
            "SELECT avg(revenue) AS a, max(revenue) AS hi FROM by_nation")
        assert result.to_dicts()[0] == {"a": 90.0, "hi": 120}

    def test_materialize_into_existing_db(self, tiny_star):
        engine = AStoreEngine(tiny_star)
        db = Database("stage")
        out = materialize(
            engine, "SELECT d_year, count(*) AS n FROM lineorder, date "
            "GROUP BY d_year", "per_year", into=db)
        assert out is db
        assert "per_year" in db

    def test_staged_table_joinable(self, tiny_star):
        """The staged table can be referenced by further tables — the
        paper's multi-rooted decomposition."""
        engine = AStoreEngine(tiny_star)
        staged = materialize(
            engine,
            "SELECT c_nation, sum(lo_revenue) AS revenue "
            "FROM lineorder, customer GROUP BY c_nation",
            "by_nation")
        # attach a tiny fact referencing the staged table by position
        staged.create_table("alerts", {
            "nation_ref": [0, 2, 0],
            "severity": [1, 5, 3],
        })
        staged.add_reference("alerts", "nation_ref", "by_nation")
        staged.airify()
        result = AStoreEngine(staged).query(
            "SELECT c_nation, sum(severity) AS sev FROM alerts, by_nation "
            "GROUP BY c_nation ORDER BY c_nation")
        assert result.rows() == [("CHINA", 4), ("FRANCE", 5)]

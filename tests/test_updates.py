"""Tests for update handling and MVCC (TransactionManager, WriteBatch,
consolidation with reference rewriting, FK-checked deletion)."""

import numpy as np
import pytest

from repro.engine import AStoreEngine
from repro.errors import UpdateError
from repro.updates import TransactionManager, WriteBatch

from .conftest import build_tiny_star


NEW_ROW = {
    "lo_orderkey": [100], "lo_custkey": [0], "lo_orderdate": [0],
    "lo_revenue": [999], "lo_discount": [0], "lo_quantity": [1],
}


class TestTransactionManager:
    def test_versions_advance(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        v0 = txn.snapshot()
        txn.insert("lineorder", NEW_ROW)
        assert txn.snapshot() == v0 + 1

    def test_insert_visible_after_snapshot(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        engine = AStoreEngine(db)
        before = txn.snapshot()
        txn.insert("lineorder", NEW_ROW)
        sql = "SELECT count(*) AS n FROM lineorder"
        assert engine.query(sql, snapshot=before).scalar() == 8
        assert engine.query(sql, snapshot=txn.snapshot()).scalar() == 9

    def test_delete_versioned(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        engine = AStoreEngine(db)
        mid = txn.snapshot()
        txn.delete("lineorder", [0, 1, 2])
        sql = "SELECT sum(lo_revenue) AS s FROM lineorder"
        assert engine.query(sql, snapshot=mid).scalar() == 360
        assert engine.query(sql, snapshot=txn.snapshot()).scalar() == 300

    def test_update_in_place(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        txn.update("lineorder", [0], {"lo_revenue": [1000]})
        assert db.table("lineorder").row(0)["lo_revenue"] == 1000

    def test_update_air_column_rejected(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        with pytest.raises(UpdateError):
            txn.update("lineorder", [0], {"lo_custkey": [1]})

    def test_failed_insert_does_not_burn_version(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        v = txn.current_version
        with pytest.raises(Exception):
            txn.insert("lineorder", {"lo_orderkey": [1]})  # missing columns
        assert txn.current_version == v


class TestReferenceCheckedDelete:
    def test_referenced_dim_delete_rejected(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        with pytest.raises(UpdateError):
            txn.delete("customer", [0], check_references=True)

    def test_unreferenced_dim_delete_allowed(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        # remove all fact rows pointing at customer 0 first
        refs = db.table("lineorder")["lo_custkey"].values()
        txn.delete("lineorder", np.flatnonzero(refs == 0))
        assert txn.delete("customer", [0], check_references=True) == 1

    def test_unchecked_delete_is_lazy(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        txn.delete("customer", [0])  # allowed; consolidation would fail
        assert db.table("customer").num_live == 3


class TestConsolidation:
    def test_consolidate_rewrites_references(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        engine = AStoreEngine(db)
        sql = ("SELECT c_nation, sum(lo_revenue) AS s FROM lineorder, customer "
               "GROUP BY c_nation ORDER BY c_nation")
        before = engine.query(sql).rows()

        # delete all fact rows of customer 0, then customer 0 itself
        refs = db.table("lineorder")["lo_custkey"].values()
        txn.delete("lineorder", np.flatnonzero(refs == 0))
        txn.delete("customer", [0])
        txn.consolidate("customer")

        after = engine.query(sql).rows()
        expected = [row for row in before if row[0] != "CHINA"]
        assert after == expected
        assert db.table("customer").num_rows == 3

    def test_slot_reuse_after_delete(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        txn.delete("lineorder", [3])
        pos = txn.insert("lineorder", NEW_ROW)
        assert pos.tolist() == [3]
        assert db.table("lineorder").num_rows == 8  # no physical growth

    def test_pinned_snapshot_blocks_slot_reuse(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        engine = AStoreEngine(db)
        snap = txn.snapshot()  # pins the pre-delete state
        txn.delete("lineorder", [3])
        pos = txn.insert("lineorder", NEW_ROW)
        assert pos.tolist() == [8]  # appended, slot 3 still protected
        sql = "SELECT sum(lo_revenue) AS s FROM lineorder"
        assert engine.query(sql, snapshot=snap).scalar() == 360

    def test_released_snapshot_allows_reuse(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        snap = txn.snapshot()
        txn.delete("lineorder", [3])
        txn.release(snap)
        pos = txn.insert("lineorder", NEW_ROW)
        assert pos.tolist() == [3]


class TestWriteBatch:
    def test_batch_is_atomic_for_snapshots(self):
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        engine = AStoreEngine(db)
        before = txn.snapshot()
        with WriteBatch(txn) as batch:
            batch.insert("lineorder", NEW_ROW)
            batch.delete("lineorder", [0])
        after = txn.snapshot()
        sql = "SELECT count(*) AS n FROM lineorder"
        assert engine.query(sql, snapshot=before).scalar() == 8
        assert engine.query(sql, snapshot=after).scalar() == 8  # +1 -1
        assert after == before + 1  # one version for the whole batch

    def test_batch_outside_context_rejected(self):
        db = build_tiny_star(mvcc=True)
        batch = WriteBatch(TransactionManager(db))
        with pytest.raises(UpdateError):
            batch.insert("lineorder", NEW_ROW)


class TestQueryingUnderChurn:
    def test_aggregates_stay_consistent_per_snapshot(self):
        """Simulated real-time analytics: writers churn, readers pin."""
        db = build_tiny_star(mvcc=True)
        txn = TransactionManager(db)
        engine = AStoreEngine(db)
        sql = "SELECT sum(lo_revenue) AS s FROM lineorder"
        snapshots = [(txn.snapshot(), 360)]
        total = 360
        rng = np.random.default_rng(0)
        for i in range(20):
            if rng.random() < 0.5:
                revenue = int(rng.integers(1, 100))
                row = dict(NEW_ROW)
                row["lo_revenue"] = [revenue]
                row["lo_orderkey"] = [200 + i]
                txn.insert("lineorder", row)
                total += revenue
            else:
                live = np.flatnonzero(db.table("lineorder").live_mask())
                victim = int(rng.choice(live))
                revenue = db.table("lineorder").row(victim)["lo_revenue"]
                txn.delete("lineorder", [victim])
                total -= revenue
            snapshots.append((txn.snapshot(), total))
        for snapshot, expected in snapshots:
            assert engine.query(sql, snapshot=snapshot).scalar() == expected

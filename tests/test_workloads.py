"""Tests for the workload definitions (SSB queries, micro workloads)."""

import numpy as np
import pytest

from repro.engine import AStoreEngine
from repro.sqlparser import ast as A
from repro.workloads import (
    GROUPING_QUERY,
    PREDICATE_SELECTIVITIES,
    SSB_QUERIES,
    TABLE2_JOINS,
    denormalize_query,
    fkpk_join_query,
    generate_join_inputs,
    predicate_workload,
    star_join_query,
)


class TestSSBQueryCatalog:
    def test_thirteen_queries(self):
        assert len(SSB_QUERIES) == 13
        assert set(SSB_QUERIES) == {
            "Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3",
            "Q3.1", "Q3.2", "Q3.3", "Q3.4", "Q4.1", "Q4.2", "Q4.3"}

    def test_star_join_form_strips_grouping(self):
        stmt = star_join_query("Q3.1")
        assert stmt.group_by == ()
        assert stmt.order_by == ()
        agg = stmt.items[0].expr
        assert isinstance(agg, A.Aggregate) and agg.func == "COUNT"

    def test_star_join_form_keeps_predicates(self):
        stmt = star_join_query("Q1.1")
        assert stmt.where is not None


class TestDenormalizeRewrite:
    def test_drops_join_predicates(self, ssb_air):
        stmt = denormalize_query("Q3.1", ssb_air)
        assert stmt.tables == ("universal",)
        text = str(stmt.where)
        assert "custkey" not in text  # join conjuncts removed
        assert "ASIA" in text         # filters kept

    def test_keeps_group_and_order(self, ssb_air):
        stmt = denormalize_query("Q3.1", ssb_air)
        assert len(stmt.group_by) == 3
        assert len(stmt.order_by) == 2

    def test_q1_rewrite_no_where_joins(self, ssb_air):
        stmt = denormalize_query("Q1.1", ssb_air)
        conjuncts = stmt.where.terms if isinstance(stmt.where, A.And) else (
            stmt.where,)
        for c in conjuncts:
            if isinstance(c, A.Comparison):
                assert not (isinstance(c.left, A.ColumnRef)
                            and isinstance(c.right, A.ColumnRef))

    def test_accepts_raw_sql(self, ssb_air):
        stmt = denormalize_query(
            "SELECT count(*) FROM lineorder, date "
            "WHERE lo_orderdate = d_datekey AND d_year = 1997", ssb_air)
        assert stmt.tables == ("universal",)


class TestPredicateWorkload:
    @pytest.mark.parametrize("k", PREDICATE_SELECTIVITIES)
    def test_selectivity_scales(self, ssb_air, k):
        engine = AStoreEngine(ssb_air)
        result = engine.query(predicate_workload(k))
        selectivity = result.stats.selectivity
        expected = (1 / k) ** 4
        # generous tolerance: small-sample selectivities wobble
        assert selectivity == pytest.approx(expected, rel=0.6, abs=2e-4)

    def test_monotone_in_k(self, ssb_air):
        engine = AStoreEngine(ssb_air)
        counts = [engine.query(predicate_workload(k)).scalar()
                  for k in PREDICATE_SELECTIVITIES]
        assert counts == sorted(counts, reverse=True)

    def test_grouping_query_shape(self, ssb_air):
        result = AStoreEngine(ssb_air).query(GROUPING_QUERY)
        # paper: 99 groups (11 discounts x 9 taxes)
        assert len(result) == 99


class TestJoinWorkloads:
    def test_table2_catalog(self):
        assert len(TABLE2_JOINS) == 19
        names = {c.name for c in TABLE2_JOINS}
        assert "workload-A" in names and "workload-B" in names

    def test_join_inputs_consistent(self):
        case = TABLE2_JOINS[0]
        data = generate_join_inputs(case, scale=1e-3, seed=1)
        # fact_keys must be the dim keys at the ref positions
        assert np.array_equal(data["dim_keys"][data["fact_refs"]],
                              data["fact_keys"])
        assert len(np.unique(data["dim_keys"])) == len(data["dim_keys"])

    def test_join_inputs_deterministic(self):
        case = TABLE2_JOINS[3]
        a = generate_join_inputs(case, scale=1e-4, seed=9)
        b = generate_join_inputs(case, scale=1e-4, seed=9)
        assert np.array_equal(a["fact_keys"], b["fact_keys"])

    def test_fkpk_query_renders(self):
        sql = fkpk_join_query("lineorder", "lo_custkey", "customer",
                              "c_custkey")
        assert "count(*)" in sql and "lo_custkey = c_custkey" in sql

    def test_fkpk_query_runs(self, ssb_air):
        sql = fkpk_join_query("lineorder", "lo_custkey", "customer",
                              "c_custkey")
        n = AStoreEngine(ssb_air).query(sql).scalar()
        assert n == ssb_air.table("lineorder").num_rows
